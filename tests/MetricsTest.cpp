//===- tests/MetricsTest.cpp - Scoring metric tests ----------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "metrics/Scoring.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

StateSequence seqFromPhases(std::vector<PhaseInterval> Phases,
                            uint64_t Total) {
  return StateSequence::fromPhases(Phases, Total);
}

} // namespace

//===----------------------------------------------------------------------===//
// Boundary matching
//===----------------------------------------------------------------------===//

TEST(BoundaryMatchTest, ExactMatchCountsBoth) {
  std::vector<PhaseInterval> Baseline = {{100, 200}};
  std::vector<PhaseInterval> Detected = {{100, 200}};
  BoundaryMatchResult M = matchBoundaries(Detected, Baseline, 300);
  EXPECT_EQ(M.MatchedStarts, 1u);
  EXPECT_EQ(M.MatchedEnds, 1u);
  EXPECT_EQ(M.baseline(), 2u);
  EXPECT_EQ(M.detected(), 2u);
}

TEST(BoundaryMatchTest, LateStartStillMatches) {
  // Constraint 1: detected start in [baseline start, baseline end).
  std::vector<PhaseInterval> Baseline = {{100, 200}};
  for (uint64_t Start : {100ull, 150ull, 199ull}) {
    std::vector<PhaseInterval> Detected = {{Start, 210}};
    BoundaryMatchResult M = matchBoundaries(Detected, Baseline, 300);
    EXPECT_EQ(M.MatchedStarts, 1u) << "start " << Start;
  }
}

TEST(BoundaryMatchTest, StartAtBaselineEndDoesNotMatch) {
  std::vector<PhaseInterval> Baseline = {{100, 200}};
  std::vector<PhaseInterval> Detected = {{200, 250}};
  BoundaryMatchResult M = matchBoundaries(Detected, Baseline, 300);
  EXPECT_EQ(M.MatchedStarts, 0u);
  // But the end 250 lies in [200, Total+1): it matches the baseline end.
  EXPECT_EQ(M.MatchedEnds, 1u);
}

TEST(BoundaryMatchTest, EndBeforeBaselineEndDoesNotMatch) {
  // Constraint 2: detected end must be at/after the baseline end.
  std::vector<PhaseInterval> Baseline = {{100, 200}};
  std::vector<PhaseInterval> Detected = {{110, 190}};
  BoundaryMatchResult M = matchBoundaries(Detected, Baseline, 300);
  EXPECT_EQ(M.MatchedStarts, 1u);
  EXPECT_EQ(M.MatchedEnds, 0u);
}

TEST(BoundaryMatchTest, EndMustPrecedeNextBaselineStart) {
  std::vector<PhaseInterval> Baseline = {{100, 200}, {250, 400}};
  // End 260 is past the start of the next baseline phase.
  std::vector<PhaseInterval> Detected = {{120, 260}};
  BoundaryMatchResult M = matchBoundaries(Detected, Baseline, 500);
  EXPECT_EQ(M.MatchedEnds, 0u);
  // End 240 would match.
  Detected = {{120, 240}};
  M = matchBoundaries(Detected, Baseline, 500);
  EXPECT_EQ(M.MatchedEnds, 1u);
}

TEST(BoundaryMatchTest, OneToOneWithinABaselinePhase) {
  // Two detected starts inside one baseline phase: only one matches.
  std::vector<PhaseInterval> Baseline = {{100, 300}};
  std::vector<PhaseInterval> Detected = {{110, 150}, {160, 320}};
  BoundaryMatchResult M = matchBoundaries(Detected, Baseline, 400);
  EXPECT_EQ(M.MatchedStarts, 1u);
  EXPECT_EQ(M.MatchedEnds, 1u); // the end 320 in [300, 401)
  EXPECT_EQ(M.detected(), 4u);
}

TEST(BoundaryMatchTest, MultipleBaselinePhases) {
  std::vector<PhaseInterval> Baseline = {{0, 100}, {150, 250}, {300, 400}};
  std::vector<PhaseInterval> Detected = {{10, 120}, {160, 260}, {310, 410}};
  BoundaryMatchResult M = matchBoundaries(Detected, Baseline, 500);
  EXPECT_EQ(M.MatchedStarts, 3u);
  EXPECT_EQ(M.MatchedEnds, 3u);
}

TEST(BoundaryMatchTest, EmptyDetectedMatchesNothing) {
  std::vector<PhaseInterval> Baseline = {{10, 60}};
  BoundaryMatchResult M = matchBoundaries({}, Baseline, 100);
  EXPECT_EQ(M.matched(), 0u);
  EXPECT_EQ(M.detected(), 0u);
  EXPECT_EQ(M.baseline(), 2u);
}

//===----------------------------------------------------------------------===//
// Score composition
//===----------------------------------------------------------------------===//

TEST(ScoringTest, PerfectDetectorScoresOne) {
  StateSequence Baseline = seqFromPhases({{100, 500}, {700, 900}}, 1000);
  AccuracyScore S = scoreDetection(Baseline, Baseline);
  EXPECT_DOUBLE_EQ(S.Correlation, 1.0);
  EXPECT_DOUBLE_EQ(S.Sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(S.FalsePositives, 0.0);
  EXPECT_DOUBLE_EQ(S.Score, 1.0);
}

TEST(ScoringTest, AlwaysTransitionDetector) {
  StateSequence Baseline = seqFromPhases({{0, 600}}, 1000);
  StateSequence Detected = seqFromPhases({}, 1000);
  AccuracyScore S = scoreDetection(Detected, Baseline);
  EXPECT_DOUBLE_EQ(S.Correlation, 0.4); // agrees on the 400 T elements
  EXPECT_DOUBLE_EQ(S.Sensitivity, 0.0);
  EXPECT_DOUBLE_EQ(S.FalsePositives, 0.0); // no detected boundaries
  EXPECT_DOUBLE_EQ(S.Score, 0.4 / 2 + 0.0 / 4 + 1.0 / 4);
}

TEST(ScoringTest, AlwaysInPhaseDetector) {
  StateSequence Baseline = seqFromPhases({{0, 600}}, 1000);
  StateSequence Detected = seqFromPhases({{0, 1000}}, 1000);
  AccuracyScore S = scoreDetection(Detected, Baseline);
  EXPECT_DOUBLE_EQ(S.Correlation, 0.6);
  // Start 0 matches ([0,600)); end 1000 in [600, 1001) matches.
  EXPECT_DOUBLE_EQ(S.Sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(S.FalsePositives, 0.0);
}

TEST(ScoringTest, FalsePositivesPenalized) {
  StateSequence Baseline = seqFromPhases({{0, 500}}, 1000);
  // Three detected phases; the extra boundaries in [500,1000) are false.
  StateSequence Detected =
      seqFromPhases({{0, 200}, {600, 700}, {800, 900}}, 1000);
  AccuracyScore S = scoreDetection(Detected, Baseline);
  EXPECT_EQ(S.DetectedBoundaries, 6u);
  // Start 0 matches; ends 700/900... end must be in [500, 1001): the
  // closest (700) matches; 200 does not (in-phase), 900 unmatched.
  EXPECT_EQ(S.MatchedBoundaries, 2u);
  EXPECT_DOUBLE_EQ(S.FalsePositives, 4.0 / 6.0);
}

TEST(ScoringTest, ScoreIsInUnitInterval) {
  Xoshiro256 Rng(2);
  for (int Trial = 0; Trial < 50; ++Trial) {
    uint64_t Total = 500 + Rng.nextBelow(500);
    auto randomPhases = [&] {
      std::vector<PhaseInterval> Phases;
      uint64_t Cursor = Rng.nextBelow(50);
      while (Cursor + 20 < Total) {
        uint64_t Len = 10 + Rng.nextBelow(100);
        uint64_t End = std::min(Total, Cursor + Len);
        Phases.push_back({Cursor, End});
        Cursor = End + 1 + Rng.nextBelow(80);
      }
      return Phases;
    };
    StateSequence A = seqFromPhases(randomPhases(), Total);
    StateSequence B = seqFromPhases(randomPhases(), Total);
    AccuracyScore S = scoreDetection(A, B);
    EXPECT_GE(S.Score, 0.0);
    EXPECT_LE(S.Score, 1.0);
    EXPECT_GE(S.Correlation, 0.0);
    EXPECT_LE(S.Correlation, 1.0);
    EXPECT_GE(S.Sensitivity, 0.0);
    EXPECT_LE(S.Sensitivity, 1.0);
    EXPECT_GE(S.FalsePositives, 0.0);
    EXPECT_LE(S.FalsePositives, 1.0);
  }
}

TEST(ScoringTest, WeightsAreHalfQuarterQuarter) {
  AccuracyScore S;
  S.Correlation = 0.8;
  S.Sensitivity = 0.4;
  S.FalsePositives = 0.2;
  S.combine();
  EXPECT_DOUBLE_EQ(S.Score, 0.8 / 2 + 0.4 / 4 + 0.8 / 4);
}

TEST(ScoringTest, EmptyBaselineSensitivityIsVacuouslyOne) {
  StateSequence Baseline = seqFromPhases({}, 500);
  StateSequence Detected = seqFromPhases({{100, 200}}, 500);
  AccuracyScore S = scoreDetection(Detected, Baseline);
  EXPECT_DOUBLE_EQ(S.Sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(S.FalsePositives, 1.0); // every boundary unmatched
}

TEST(ScoringTest, AnchoredOverloadUsesGivenPhases) {
  StateSequence Baseline = seqFromPhases({{100, 400}}, 1000);
  // Detected (late) phase [250, 450); anchored start pulls it to 120.
  std::vector<PhaseInterval> Anchored = {{120, 450}};
  std::vector<PhaseInterval> Late = {{250, 450}};
  AccuracyScore SAnchored = scoreDetection(Anchored, Baseline);
  AccuracyScore SLate = scoreDetection(Late, Baseline);
  // Anchoring improves correlation (more overlap) while matching equally.
  EXPECT_GT(SAnchored.Correlation, SLate.Correlation);
  EXPECT_EQ(SAnchored.MatchedBoundaries, SLate.MatchedBoundaries);
  EXPECT_GT(SAnchored.Score, SLate.Score);
}

TEST(ScoringTest, LateDetectionDegradesCorrelationOnly) {
  StateSequence Baseline = seqFromPhases({{0, 1000}}, 2000);
  StateSequence Detected = seqFromPhases({{200, 1000}}, 2000);
  AccuracyScore S = scoreDetection(Detected, Baseline);
  EXPECT_DOUBLE_EQ(S.Correlation, 0.9);
  EXPECT_DOUBLE_EQ(S.Sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(S.FalsePositives, 0.0);
}
