//===- tests/ObserverTest.cpp - Observability layer tests ---------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the DetectorObserver interface, the RunTrace recorder, and
/// the TraceExport serialization: (a) the callback sequence of an
/// observed run obeys the state machine documented in
/// docs/OBSERVABILITY.md, (b) JSON and CSV exports round-trip a RunTrace
/// exactly, and (c) attaching an observer leaves the DetectorRun output
/// bit-for-bit unchanged.
///
//===----------------------------------------------------------------------===//

#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"
#include "obs/TraceExport.h"
#include "support/Random.h"
#include "trace/BranchTrace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>

using namespace opd;

namespace {

/// Temp-file path helper; removes the file on destruction.
class TempFile {
  std::string Path;

public:
  explicit TempFile(const std::string &Suffix) {
    Path = testing::TempDir() + "opd_observer_test_" +
           std::to_string(::getpid()) + "_" + Suffix;
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }
};

/// Phase-rich trace: stable vocabulary blocks separated by noise bursts.
BranchTrace makePhasedTrace(unsigned Phases, unsigned PhaseLen,
                            unsigned NoiseLen, uint64_t Seed) {
  const unsigned StableSites = 16;
  const unsigned NoiseSites = 256;
  BranchTrace Trace;
  for (unsigned S = 0; S != StableSites + NoiseSites; ++S)
    Trace.internSite(ProfileElement(0, S, true));
  Xoshiro256 Rng(Seed);
  for (unsigned P = 0; P != Phases; ++P) {
    for (unsigned I = 0; I != PhaseLen; ++I)
      Trace.appendIndex(static_cast<SiteIndex>(Rng.nextBelow(StableSites)));
    for (unsigned I = 0; I != NoiseLen; ++I)
      Trace.appendIndex(static_cast<SiteIndex>(
          StableSites + Rng.nextBelow(NoiseSites)));
  }
  return Trace;
}

DetectorConfig makeConfig(uint32_t CW, TWPolicyKind Policy,
                          uint32_t Skip = 1) {
  DetectorConfig C;
  C.Window.CWSize = CW;
  C.Window.TWSize = CW;
  C.Window.SkipFactor = Skip;
  C.Window.TWPolicy = Policy;
  C.Model = ModelKind::UnweightedSet;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  return C;
}

/// Runs \p Config over \p Trace with a RunTrace attached.
RunTrace observeRun(const BranchTrace &Trace, const DetectorConfig &Config,
                    DetectorRun *RunOut = nullptr) {
  std::unique_ptr<PhaseDetector> Detector =
      makeDetector(Config, Trace.numSites());
  RunTrace Observed;
  Observed.setDetectorName(Detector->describe());
  DetectorRun Run = runDetector(*Detector, Trace, &Observed);
  if (RunOut)
    *RunOut = std::move(Run);
  return Observed;
}

} // namespace

//===----------------------------------------------------------------------===//
// (a) Callback sequences follow the documented state machine
//===----------------------------------------------------------------------===//

TEST(ObserverSequenceTest, EventStateMachine) {
  BranchTrace Trace = makePhasedTrace(3, 2000, 600, 7);
  DetectorRun Run;
  RunTrace Observed =
      observeRun(Trace, makeConfig(128, TWPolicyKind::Adaptive), &Run);
  const std::vector<TraceEvent> &Events = Observed.events();
  ASSERT_GE(Events.size(), 4u);

  // The timeline is bracketed by exactly one RunBegin / RunEnd pair.
  EXPECT_EQ(Events.front().Kind, TraceEventKind::RunBegin);
  EXPECT_EQ(Events.front().A, Trace.size());
  EXPECT_EQ(Events.front().B, 1u);
  EXPECT_EQ(Events.back().Kind, TraceEventKind::RunEnd);
  EXPECT_EQ(Events.back().Offset, Trace.size());

  bool PhaseOpen = false;
  bool SawAnchorSinceEval = false;
  bool SawResizeSinceAnchor = false;
  uint64_t LastEvalOffset = 0;
  for (size_t I = 1; I + 1 != Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    switch (E.Kind) {
    case TraceEventKind::RunBegin:
    case TraceEventKind::RunEnd:
      FAIL() << "run bracket event in the middle of the timeline";
      break;
    case TraceEventKind::Evaluation:
      // Evaluation offsets advance monotonically through the stream.
      EXPECT_GE(E.Offset, LastEvalOffset);
      LastEvalOffset = E.Offset;
      SawAnchorSinceEval = false;
      SawResizeSinceAnchor = false;
      break;
    case TraceEventKind::Anchor:
      // Anchors happen on a T->P flip, after its evaluation, at the
      // same stream offset, estimating a start at or before it.
      EXPECT_FALSE(PhaseOpen);
      EXPECT_EQ(E.Offset, LastEvalOffset);
      EXPECT_LE(E.A, E.Offset);
      SawAnchorSinceEval = true;
      break;
    case TraceEventKind::WindowResize:
      // Adaptive resize directly follows the anchor computation.
      EXPECT_TRUE(SawAnchorSinceEval);
      EXPECT_EQ(E.Offset, LastEvalOffset);
      SawResizeSinceAnchor = true;
      break;
    case TraceEventKind::WindowFlush:
      // Flushes happen while closing an open phase.
      EXPECT_TRUE(PhaseOpen);
      break;
    case TraceEventKind::PhaseBegin:
      // The stream-level open follows the model-level anchor/resize
      // (this config is Adaptive, so both are mandatory).
      EXPECT_FALSE(PhaseOpen);
      EXPECT_TRUE(SawAnchorSinceEval);
      EXPECT_TRUE(SawResizeSinceAnchor);
      PhaseOpen = true;
      break;
    case TraceEventKind::PhaseEnd:
      EXPECT_TRUE(PhaseOpen);
      PhaseOpen = false;
      break;
    }
  }
  EXPECT_FALSE(PhaseOpen);

  // The reconstructed intervals are exactly the detected phases, and a
  // phase-rich trace must actually produce some.
  EXPECT_EQ(Observed.phases(), Run.DetectedPhases);
  EXPECT_GT(Run.DetectedPhases.size(), 0u);

  // Counters agree with the timeline.
  const RunCounters &C = Observed.counters();
  EXPECT_EQ(C.Elements, Trace.size());
  EXPECT_EQ(C.PhasesOpened, Run.DetectedPhases.size());
  EXPECT_EQ(C.PhasesClosed, Run.DetectedPhases.size());
  EXPECT_EQ(C.Anchors, C.PhasesOpened);
  EXPECT_EQ(C.WindowResizes, C.PhasesOpened);
  uint64_t Evals = 0;
  for (const TraceEvent &E : Events)
    Evals += E.Kind == TraceEventKind::Evaluation;
  EXPECT_EQ(C.Evaluations, Evals);
}

TEST(ObserverSequenceTest, ConstantTWEmitsNoResize) {
  BranchTrace Trace = makePhasedTrace(2, 1500, 500, 11);
  RunTrace Observed =
      observeRun(Trace, makeConfig(128, TWPolicyKind::Constant));
  EXPECT_EQ(Observed.counters().WindowResizes, 0u);
  EXPECT_GT(Observed.counters().PhasesOpened, 0u);
  // Anchor estimates are still computed and reported on phase starts.
  EXPECT_EQ(Observed.counters().Anchors,
            Observed.counters().PhasesOpened);
}

TEST(ObserverSequenceTest, SkipFactorBatchSizeReported) {
  BranchTrace Trace = makePhasedTrace(2, 1500, 500, 13);
  RunTrace Observed = observeRun(
      Trace, makeConfig(128, TWPolicyKind::Constant, /*Skip=*/16));
  EXPECT_EQ(Observed.batchSize(), 16u);
  EXPECT_EQ(Observed.traceSize(), Trace.size());
}

TEST(ObserverSequenceTest, CountingObserverMatchesRunTrace) {
  BranchTrace Trace = makePhasedTrace(3, 2000, 600, 7);
  DetectorConfig Config = makeConfig(128, TWPolicyKind::Adaptive);
  RunTrace Observed = observeRun(Trace, Config);

  std::unique_ptr<PhaseDetector> Detector =
      makeDetector(Config, Trace.numSites());
  CountingObserver Counting;
  runDetector(*Detector, Trace, &Counting);
  EXPECT_EQ(Counting.counters(), Observed.counters());
}

//===----------------------------------------------------------------------===//
// (b) JSON / CSV round-trips
//===----------------------------------------------------------------------===//

TEST(TraceExportTest, JSONRoundTrip) {
  BranchTrace Trace = makePhasedTrace(3, 2000, 600, 19);
  RunTrace Observed =
      observeRun(Trace, makeConfig(128, TWPolicyKind::Adaptive));

  TempFile F("trace.json");
  ASSERT_TRUE(writeRunTraceJSON(Observed, F.path()));
  RunTrace Restored;
  IOStatus S = readRunTraceJSON(F.path(), Restored);
  ASSERT_TRUE(S) << S.Message;

  EXPECT_EQ(Restored.events(), Observed.events());
  EXPECT_EQ(Restored.counters(), Observed.counters());
  EXPECT_EQ(Restored.detectorName(), Observed.detectorName());
  EXPECT_EQ(Restored.traceSize(), Observed.traceSize());
  EXPECT_EQ(Restored.batchSize(), Observed.batchSize());
  EXPECT_EQ(Restored.phases(), Observed.phases());
  EXPECT_EQ(Restored.anchoredPhases(), Observed.anchoredPhases());
}

TEST(TraceExportTest, CSVRoundTrip) {
  BranchTrace Trace = makePhasedTrace(2, 1800, 700, 23);
  RunTrace Observed =
      observeRun(Trace, makeConfig(96, TWPolicyKind::Adaptive));

  TempFile F("trace.csv");
  ASSERT_TRUE(writeRunTraceCSV(Observed, F.path()));
  RunTrace Restored;
  IOStatus S = readRunTraceCSV(F.path(), Restored);
  ASSERT_TRUE(S) << S.Message;

  EXPECT_EQ(Restored.events(), Observed.events());
  EXPECT_EQ(Restored.counters(), Observed.counters());
  EXPECT_EQ(Restored.phases(), Observed.phases());
}

TEST(TraceExportTest, RejectsMalformedJSON) {
  TempFile F("bad.json");
  {
    std::FILE *Out = std::fopen(F.path().c_str(), "w");
    ASSERT_NE(Out, nullptr);
    std::fputs("{\"version\": 1, \"events\": [{\"type\": \"bogus\"}]}",
               Out);
    std::fclose(Out);
  }
  RunTrace Restored;
  EXPECT_FALSE(readRunTraceJSON(F.path(), Restored));

  TempFile G("bad.csv");
  {
    std::FILE *Out = std::fopen(G.path().c_str(), "w");
    ASSERT_NE(Out, nullptr);
    std::fputs("not,a,run,trace\n", Out);
    std::fclose(Out);
  }
  EXPECT_FALSE(readRunTraceCSV(G.path(), Restored));
}

//===----------------------------------------------------------------------===//
// (c) Observation does not perturb detection
//===----------------------------------------------------------------------===//

TEST(ObserverTransparencyTest, IdenticalRunsWithAndWithoutObserver) {
  BranchTrace Trace = makePhasedTrace(3, 2000, 600, 31);
  for (TWPolicyKind Policy :
       {TWPolicyKind::Constant, TWPolicyKind::Adaptive}) {
    DetectorConfig Config = makeConfig(128, Policy);
    std::unique_ptr<PhaseDetector> Plain =
        makeDetector(Config, Trace.numSites());
    DetectorRun Bare = runDetector(*Plain, Trace);

    std::unique_ptr<PhaseDetector> Watched =
        makeDetector(Config, Trace.numSites());
    RunTrace Observed;
    DetectorRun Traced = runDetector(*Watched, Trace, &Observed);

    // Identical per-element output, phases, and anchored phases.
    ASSERT_EQ(Bare.States.size(), Traced.States.size());
    for (uint64_t I = 0; I != Bare.States.size(); ++I)
      ASSERT_EQ(Bare.States.at(I), Traced.States.at(I)) << "element " << I;
    EXPECT_EQ(Bare.DetectedPhases, Traced.DetectedPhases);
    EXPECT_EQ(Bare.AnchoredPhases, Traced.AnchoredPhases);

    // The observer is detached after the run.
    EXPECT_EQ(Watched->observer(), nullptr);
  }
}

TEST(ObserverTransparencyTest, ReusingDetectorAfterObservedRun) {
  // An observed run followed by an unobserved run on the same detector
  // instance behaves like two unobserved runs (reset clears everything).
  BranchTrace Trace = makePhasedTrace(2, 1500, 500, 37);
  DetectorConfig Config = makeConfig(128, TWPolicyKind::Adaptive);
  std::unique_ptr<PhaseDetector> Detector =
      makeDetector(Config, Trace.numSites());

  RunTrace Observed;
  DetectorRun First = runDetector(*Detector, Trace, &Observed);
  DetectorRun Second = runDetector(*Detector, Trace);
  EXPECT_EQ(First.DetectedPhases, Second.DetectedPhases);
  EXPECT_EQ(Observed.phases(), First.DetectedPhases);
}
