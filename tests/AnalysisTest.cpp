//===- tests/AnalysisTest.cpp - Unit tests for src/analysis --------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/CostModel.h"
#include "analysis/StaticPhasePredictor.h"
#include "baseline/BaselineSolution.h"
#include "lang/ConstEval.h"
#include "lang/Sema.h"
#include "lang/Transforms.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace opd;

namespace {

/// Parses + analyzes; expects success.
std::unique_ptr<Program> compileOK(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.renderAll();
  return P;
}

/// Index of method \p Name in \p Prog; asserts existence.
uint32_t methodIndex(const Program &Prog, const std::string &Name) {
  for (uint32_t I = 0; I != Prog.methods().size(); ++I)
    if (Prog.methods()[I]->name() == Name)
      return I;
  ADD_FAILURE() << "no method named " << Name;
  return ~0u;
}

/// Reads one bundled example source; skips the test when the source tree
/// is not available (OPD_SOURCE_DIR is baked in by tests/CMakeLists.txt).
std::string readExample(const std::string &Name) {
  std::string Path = std::string(OPD_SOURCE_DIR) + "/examples/" + Name;
  std::ifstream In(Path);
  if (!In) {
    ADD_FAILURE() << "cannot open " << Path;
    return "";
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// CallGraph
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, ReachabilityAndDeadMethods) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { call a(); }
    method a() { call b(); }
    method b() { branch x; }
    method dead() { call deader(); }
    method deader() { branch y; }
  )");
  CallGraph G = CallGraph::build(*P);
  EXPECT_TRUE(G.isReachable(methodIndex(*P, "main")));
  EXPECT_TRUE(G.isReachable(methodIndex(*P, "a")));
  EXPECT_TRUE(G.isReachable(methodIndex(*P, "b")));
  EXPECT_FALSE(G.isReachable(methodIndex(*P, "dead")));
  EXPECT_FALSE(G.isReachable(methodIndex(*P, "deader")));
}

TEST(CallGraphTest, SccGroupsMutualRecursion) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { call even(10); }
    method even(n) { branch e; when (n > 0) { call odd(n - 1); } }
    method odd(n) { branch o; when (n > 0) { call even(n - 1); } }
  )");
  CallGraph G = CallGraph::build(*P);
  uint32_t Even = methodIndex(*P, "even");
  uint32_t Odd = methodIndex(*P, "odd");
  uint32_t Main = methodIndex(*P, "main");
  EXPECT_EQ(G.sccId(Even), G.sccId(Odd));
  EXPECT_NE(G.sccId(Main), G.sccId(Even));
  EXPECT_TRUE(G.isRecursive(Even));
  EXPECT_TRUE(G.isRecursive(Odd));
  EXPECT_FALSE(G.isRecursive(Main));
  // Conditional recursion is not flagged as unconditional.
  EXPECT_FALSE(G.isUnconditionallyRecursive(Even));
  // Reverse topological order: the callee SCC completes first.
  EXPECT_LT(G.sccId(Even), G.sccId(Main));
}

TEST(CallGraphTest, SelfRecursionAndUnconditionalCycles) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { call safe(5); call runaway(); }
    method safe(n) { branch s; when (n > 0) { call safe(n - 1); } }
    method runaway() { branch r; call runaway(); }
  )");
  CallGraph G = CallGraph::build(*P);
  uint32_t Safe = methodIndex(*P, "safe");
  uint32_t Runaway = methodIndex(*P, "runaway");
  EXPECT_TRUE(G.isRecursive(Safe));
  EXPECT_FALSE(G.isUnconditionallyRecursive(Safe));
  EXPECT_TRUE(G.isRecursive(Runaway));
  EXPECT_TRUE(G.isUnconditionallyRecursive(Runaway));
}

TEST(CallGraphTest, LoopWrappedCallsStayUnconditional) {
  // A call wrapped only in constant-positive-count loops still runs on
  // every invocation; a pick arm never does.
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { loop times 3 { call a(); } }
    method a() { pick { weight 1 { call a(); } weight 1 { branch x; } } }
  )");
  CallGraph G = CallGraph::build(*P);
  const std::vector<CallSite> &Sites = G.callSites();
  ASSERT_EQ(Sites.size(), 2u);
  EXPECT_TRUE(Sites[0].Unconditional);  // main -> a, under `loop times 3`
  EXPECT_FALSE(Sites[1].Unconditional); // a -> a, under a pick arm
  EXPECT_FALSE(G.isUnconditionallyRecursive(methodIndex(*P, "a")));
}

//===----------------------------------------------------------------------===//
// ConstEval
//===----------------------------------------------------------------------===//

TEST(ConstEvalTest, EnvironmentLookups) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { call f(4); }
    method f(n) { loop times n * 3 + 1 { branch x; } }
  )");
  const MethodDecl &F = *P->methods()[methodIndex(*P, "f")];
  const auto *Loop = static_cast<const LoopStmt *>(
      F.body()->stmts().front().get());

  // Without an environment the count does not fold...
  EXPECT_FALSE(evaluateConstant(*Loop->count()).has_value());
  // ...with slot 0 = 4 it evaluates to 13.
  ConstEnv Env = {4};
  std::optional<int64_t> V = evaluateConstant(*Loop->count(), &Env);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 13);
  // An unknown slot poisons the whole expression.
  ConstEnv Unknown = {std::nullopt};
  EXPECT_FALSE(evaluateConstant(*Loop->count(), &Unknown).has_value());
}

TEST(ConstEvalTest, DivisionByConstantZeroDoesNotFold) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { loop times 7 / 0 { branch x; } }
  )");
  const MethodDecl &Main = *P->methods()[P->entryIndex()];
  const auto *Loop = static_cast<const LoopStmt *>(
      Main.body()->stmts().front().get());
  EXPECT_FALSE(evaluateConstant(*Loop->count()).has_value());
  // The shared folder must preserve the same rule.
  EXPECT_EQ(foldConstants(*P), 0u);
}

TEST(ConstEvalTest, FoldConstantsUsesSharedEvaluator) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { loop times 2 * 3 + 4 { branch x; } }
  )");
  EXPECT_GT(foldConstants(*P), 0u);
  const MethodDecl &Main = *P->methods()[P->entryIndex()];
  const auto *Loop = static_cast<const LoopStmt *>(
      Main.body()->stmts().front().get());
  std::optional<int64_t> V = evaluateConstant(*Loop->count());
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 10);
}

//===----------------------------------------------------------------------===//
// CostModel
//===----------------------------------------------------------------------===//

namespace {

/// Builds graph + costs in one go.
CostAnalysis costsOf(const Program &Prog) {
  return CostAnalysis::run(Prog, CallGraph::build(Prog));
}

} // namespace

TEST(CostModelTest, StraightLineCostsAreExact) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { branch a; branch b flip 0.5; loop times 10 { branch c; } }
  )");
  CostAnalysis C = costsOf(*P);
  const Cost &Total = C.programCost();
  EXPECT_TRUE(Total.exact());
  EXPECT_EQ(Total.min(), 12u); // 2 straight-line + 10 loop iterations
  ASSERT_EQ(C.loops().size(), 1u);
  EXPECT_TRUE(C.loops()[0].TripCount.has_value());
  EXPECT_EQ(*C.loops()[0].TripCount, 10u);
  EXPECT_EQ(C.loops()[0].Body.min(), 1u);
  EXPECT_EQ(C.loops()[0].Total.max(), 10u);
}

TEST(CostModelTest, UnknownTripCountIsUnbounded) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { call f(9); }
    method f(n) { loop times n { branch x; } }
  )");
  CostAnalysis C = costsOf(*P);
  ASSERT_EQ(C.loops().size(), 1u);
  // Context-insensitive: `n` is unknown inside f.
  EXPECT_FALSE(C.loops()[0].TripCount.has_value());
  EXPECT_FALSE(C.loops()[0].Total.bounded());
  EXPECT_EQ(C.loops()[0].Total.min(), 0u);
  EXPECT_FALSE(C.programCost().bounded());
}

TEST(CostModelTest, UnknownPropagatesThroughPickArms) {
  // Arms of different sizes make the cost a non-exact interval; an arm
  // with an unknown-count loop makes it unbounded.
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() {
      pick { weight 1 { branch a; } weight 3 { branch b; branch c; } }
    }
  )");
  CostAnalysis C = costsOf(*P);
  EXPECT_TRUE(C.programCost().bounded());
  EXPECT_FALSE(C.programCost().exact());
  EXPECT_EQ(C.programCost().min(), 1u);
  EXPECT_EQ(C.programCost().max(), 2u);

  std::unique_ptr<Program> P2 = compileOK(R"(
    program t;
    method main() { call f(3); }
    method f(n) {
      pick { weight 1 { branch a; } weight 1 { loop times n { branch b; } } }
    }
  )");
  CostAnalysis C2 = costsOf(*P2);
  EXPECT_FALSE(C2.programCost().bounded());
  // Cheapest path: the loop arm with zero iterations.
  EXPECT_EQ(C2.programCost().min(), 0u);
}

TEST(CostModelTest, BranchJoinsAndConstantWhens) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() {
      if 0.3 { branch a; branch b; } else { branch c; }
      when (2 > 1) { branch d; branch e; } else { branch f; }
    }
  )");
  CostAnalysis C = costsOf(*P);
  // if: 1 + [1,2]; when (constant true): 1 + exactly 2.
  EXPECT_TRUE(C.programCost().bounded());
  EXPECT_EQ(C.programCost().min(), 2u + 3u);
  EXPECT_EQ(C.programCost().max(), 3u + 3u);
}

TEST(CostModelTest, RecursionIsUnboundedWithSoundMin) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { call f(6); }
    method f(n) { branch a; when (n > 0) { call f(n - 1); } }
  )");
  CostAnalysis C = costsOf(*P);
  uint32_t F = methodIndex(*P, "f");
  EXPECT_FALSE(C.methodCost(F).bounded());
  // One invocation always emits the `branch a` and `when` elements.
  EXPECT_GE(C.methodCost(F).min(), 2u);
}

TEST(CostModelTest, SaturationOnAdversarialCounts) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() {
      loop times 2000M {
        loop times 2000M { loop times 2000M { branch x; } }
      }
    }
  )");
  CostAnalysis C = costsOf(*P);
  EXPECT_TRUE(C.programCost().bounded());
  EXPECT_EQ(C.programCost().min(), Cost::Saturated);
}

//===----------------------------------------------------------------------===//
// StaticPhasePredictor
//===----------------------------------------------------------------------===//

TEST(PredictorTest, DeterministicProgramPredictsExactly) {
  std::string Source = R"(
    program t;
    method main() {
      loop times 50 { branch a; branch b flip 0.25; }
      branch t0;
      call f(4);
    }
    method f(n) { loop times n * 10 { branch c; } when (n > 2) { branch d; } }
  )";
  std::unique_ptr<Program> P = compileOK(Source);
  StaticPrediction Prediction = simulateProgram(*P);
  EXPECT_TRUE(Prediction.Exact);
  EXPECT_EQ(Prediction.ApproxDecisions, 0u);

  ExecutionResult Real = runProgram(*P);
  EXPECT_EQ(Prediction.PredictedElements, Real.Stats.DynamicBranches);
  EXPECT_EQ(Prediction.Trace.size(), Real.CallLoop.size());
  for (size_t I = 0; I != Prediction.Trace.size(); ++I) {
    EXPECT_EQ(Prediction.Trace[I].Kind, Real.CallLoop[I].Kind);
    EXPECT_EQ(Prediction.Trace[I].Id, Real.CallLoop[I].Id);
    EXPECT_EQ(Prediction.Trace[I].Offset, Real.CallLoop[I].Offset);
  }
}

TEST(PredictorTest, ApproximationsAreCounted) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() {
      if 0.5 { branch a; } else { branch b; branch c; }
      pick { weight 2 { branch d; } weight 1 { branch e; } }
      call f(3);
    }
    method f(n) { loop times n { branch x; } }
  )");
  StaticPrediction Prediction = simulateProgram(*P);
  EXPECT_FALSE(Prediction.Exact);
  EXPECT_EQ(Prediction.ApproxDecisions, 2u); // the if and the pick
}

TEST(PredictorTest, BudgetsTruncateGracefully) {
  std::unique_ptr<Program> P = compileOK(R"(
    program t;
    method main() { loop times 1000 { branch a; } }
  )");
  PredictorOptions Options;
  Options.MaxElements = 100;
  StaticPrediction Prediction = simulateProgram(*P, Options);
  EXPECT_TRUE(Prediction.Truncated);
  EXPECT_FALSE(Prediction.Exact);
  EXPECT_EQ(Prediction.PredictedElements, 100u);
  // Exits are still emitted: the trace stays properly nested.
  ASSERT_GE(Prediction.Trace.size(), 2u);
  EXPECT_EQ(Prediction.Trace[Prediction.Trace.size() - 1].Kind,
            CallLoopEventKind::MethodExit);
}

namespace {

/// Runs the full static-vs-dynamic pipeline on one example source and
/// returns the accuracy score of the predicted phases.
AccuracyScore scoreExample(const std::string &FileName, uint64_t MPL,
                           uint64_t *ApproxOut = nullptr) {
  std::string Source = readExample(FileName);
  if (Source.empty())
    return {};
  std::unique_ptr<Program> P = compileOK(Source);
  ExecutionResult Real = runProgram(*P);
  std::vector<BaselineSolution> Oracles =
      computeBaselines(Real.CallLoop, Real.Stats.DynamicBranches, {MPL});

  StaticPrediction Prediction = simulateProgram(*P);
  if (ApproxOut)
    *ApproxOut = Prediction.ApproxDecisions;
  std::vector<PhaseInterval> Phases = predictPhases(Prediction, MPL);
  return scorePrediction(Phases, Oracles.front());
}

} // namespace

TEST(PredictorTest, SampleWorkloadScoresAgainstOracle) {
  // sample.jp is cost-deterministic (flips never change element counts),
  // so the static prediction should land essentially on the oracle.
  AccuracyScore Score = scoreExample("sample.jp", 1000);
  RecordProperty("score", std::to_string(Score.Score));
  std::printf("static predictor score on sample.jp (MPL 1K): %.3f "
              "(correlation %.3f, sensitivity %.3f, fp %.3f)\n",
              Score.Score, Score.Correlation, Score.Sensitivity,
              Score.FalsePositives);
  EXPECT_GE(Score.Score, 0.5);
  EXPECT_GE(Score.Correlation, 0.9);
}

TEST(PredictorTest, RecursiveWorkloadScoresAgainstOracle) {
  // recursive.jp prunes probabilistically (`if 0.6`), so the prediction
  // is approximate; the score should still beat a no-phase strawman.
  uint64_t Approx = 0;
  AccuracyScore Score = scoreExample("recursive.jp", 1000, &Approx);
  RecordProperty("score", std::to_string(Score.Score));
  std::printf("static predictor score on recursive.jp (MPL 1K): %.3f "
              "(correlation %.3f, sensitivity %.3f, fp %.3f, "
              "%llu approximations)\n",
              Score.Score, Score.Correlation, Score.Sensitivity,
              Score.FalsePositives, static_cast<unsigned long long>(Approx));
  EXPECT_GT(Approx, 0u);
  EXPECT_GE(Score.Score, 0.5);
}
