//===- tests/TimelineTest.cpp - Timeline rendering tests -----------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "metrics/Timeline.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

StateSequence makeStates(std::vector<PhaseInterval> Phases,
                         uint64_t Total) {
  return StateSequence::fromPhases(Phases, Total);
}

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

} // namespace

TEST(TimelineTest, SVGContainsOneBarPerPhaseRun) {
  StateSequence S = makeStates({{100, 200}, {300, 500}, {700, 900}}, 1000);
  std::string SVG = renderTimelineSVG({{"track", &S, "#112233"}});
  EXPECT_NE(SVG.find("<svg"), std::string::npos);
  EXPECT_NE(SVG.find("</svg>"), std::string::npos);
  // One background rect + three phase bars.
  EXPECT_EQ(countOccurrences(SVG, "<rect"), 4u);
  EXPECT_EQ(countOccurrences(SVG, "#112233"), 3u);
  EXPECT_NE(SVG.find(">track<"), std::string::npos);
}

TEST(TimelineTest, MultipleTracksStack) {
  StateSequence A = makeStates({{0, 10}}, 100);
  StateSequence B = makeStates({{50, 100}}, 100);
  std::string SVG = renderTimelineSVG(
      {{"oracle", &A, "#0a0"}, {"detector", &B, "#00a"}});
  EXPECT_NE(SVG.find(">oracle<"), std::string::npos);
  EXPECT_NE(SVG.find(">detector<"), std::string::npos);
  EXPECT_EQ(countOccurrences(SVG, "<rect"), 4u); // 2 backgrounds + 2 bars
}

TEST(TimelineTest, BarPositionsScaleWithOffsets) {
  // Phase covering the second half: its x must be at LabelWidth + W/2.
  StateSequence S = makeStates({{500, 1000}}, 1000);
  TimelineOptions Options;
  Options.Width = 1000;
  Options.LabelWidth = 100;
  std::string SVG = renderTimelineSVG({{"t", &S, "#abc"}}, Options);
  EXPECT_NE(SVG.find("x=\"600.00\""), std::string::npos);
  EXPECT_NE(SVG.find("width=\"500.00\""), std::string::npos);
}

TEST(TimelineTest, TinyPhasesStayVisible) {
  // A 1-element phase in a huge trace still renders at >= 0.5 px.
  StateSequence S = makeStates({{500000, 500001}}, 1000000);
  std::string SVG = renderTimelineSVG({{"t", &S, "#abc"}});
  EXPECT_NE(SVG.find("width=\"0.50\""), std::string::npos);
}

TEST(TimelineTest, EscapesLabels) {
  StateSequence S = makeStates({}, 10);
  std::string SVG =
      renderTimelineSVG({{"a<b> & \"c\"", &S, "#abc"}});
  EXPECT_NE(SVG.find("a&lt;b&gt; &amp; &quot;c&quot;"),
            std::string::npos);
  EXPECT_EQ(SVG.find(">a<b>"), std::string::npos);
}

TEST(TimelineTest, HTMLWrapsSVG) {
  StateSequence S = makeStates({{1, 5}}, 10);
  std::string Html = renderTimelineHTML("My <Title>", {{"t", &S, "#abc"}});
  EXPECT_NE(Html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(Html.find("My &lt;Title&gt;"), std::string::npos);
  EXPECT_NE(Html.find("<svg"), std::string::npos);
  EXPECT_NE(Html.find("</html>"), std::string::npos);
}

TEST(TimelineTest, AxisShowsTraceLength) {
  StateSequence S = makeStates({}, 123456);
  std::string SVG = renderTimelineSVG({{"t", &S, "#abc"}});
  EXPECT_NE(SVG.find("123,456"), std::string::npos);
  EXPECT_NE(SVG.find("61,728"), std::string::npos); // midpoint tick
}
