//===- tests/LintTest.cpp - Unit tests for analysis/Lint -----------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace opd;

namespace {

/// Compiles \p Source and runs the linter over it.
DiagnosticEngine lint(const std::string &Source, LintOptions Options = {}) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.renderAll();
  if (P)
    lintProgram(*P, Options, Diags);
  return Diags;
}

/// Diagnostics with code \p Code.
std::vector<Diagnostic> withCode(const DiagnosticEngine &Diags,
                                 const std::string &Code) {
  std::vector<Diagnostic> Out;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Code == Code)
      Out.push_back(D);
  return Out;
}

} // namespace

TEST(LintTest, CleanProgramHasNoFindings) {
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() { loop times 10 { branch a; } call f(2); }
    method f(n) { when (n > 0) { branch b; } else { branch c; } }
  )");
  EXPECT_TRUE(Diags.empty()) << Diags.renderAll();
}

TEST(LintTest, DetectsDeadMethod) {
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() { branch a; }
    method orphan() { branch b; }
  )");
  std::vector<Diagnostic> Dead = withCode(Diags, "dead-method");
  ASSERT_EQ(Dead.size(), 1u);
  EXPECT_EQ(Dead[0].Severity, DiagSeverity::Warning);
  EXPECT_NE(Dead[0].Message.find("orphan"), std::string::npos);
}

TEST(LintTest, DetectsConstantFalseArm) {
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() { when (1 > 2) { branch a; } else { branch b; } }
  )");
  std::vector<Diagnostic> Arms = withCode(Diags, "unreachable-arm");
  ASSERT_EQ(Arms.size(), 1u);
  EXPECT_EQ(Arms[0].Severity, DiagSeverity::Warning);
  EXPECT_NE(Arms[0].Message.find("always false"), std::string::npos);
}

TEST(LintTest, DetectsDegenerateIfArms) {
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() {
      if 0 { branch a; }
      if 1 { branch b; } else { branch c; }
    }
  )");
  EXPECT_EQ(withCode(Diags, "unreachable-arm").size(), 2u);
}

TEST(LintTest, NonConstantConditionsStayQuiet) {
  // Loop variables and parameters are runtime values: `when (i % 2 == 0)`
  // must not be flagged.
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() { loop i times 6 { when (i % 2 == 0) { branch a; } else { branch b; } } }
  )");
  EXPECT_TRUE(Diags.empty()) << Diags.renderAll();
}

TEST(LintTest, DetectsUnboundedLoop) {
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() { loop times 200M { branch a; branch b; } }
  )");
  std::vector<Diagnostic> Loops = withCode(Diags, "unbounded-loop");
  ASSERT_EQ(Loops.size(), 1u);
  EXPECT_EQ(Loops[0].Severity, DiagSeverity::Error);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LintTest, BudgetIsConfigurable) {
  LintOptions Tight;
  Tight.ElementBudget = 100;
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() { loop times 200 { branch a; } }
  )",
                                Tight);
  EXPECT_EQ(withCode(Diags, "unbounded-loop").size(), 1u);
}

TEST(LintTest, DetectsRecursionCycle) {
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() { call ping(8); }
    method ping(n) { branch p; when (n > 0) { call pong(n - 1); } }
    method pong(n) { branch q; when (n > 0) { call ping(n - 1); } }
  )");
  std::vector<Diagnostic> Cycles = withCode(Diags, "recursion-cycle");
  ASSERT_EQ(Cycles.size(), 1u); // one note per cycle, not per member
  EXPECT_EQ(Cycles[0].Severity, DiagSeverity::Note);
  EXPECT_NE(Cycles[0].Message.find("ping"), std::string::npos);
  EXPECT_NE(Cycles[0].Message.find("pong"), std::string::npos);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LintTest, DetectsInfiniteRecursion) {
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() { call runaway(); }
    method runaway() { branch r; call runaway(); }
  )");
  std::vector<Diagnostic> Infinite = withCode(Diags, "infinite-recursion");
  ASSERT_EQ(Infinite.size(), 1u);
  EXPECT_EQ(Infinite[0].Severity, DiagSeverity::Error);
  EXPECT_NE(Infinite[0].Message.find("runaway"), std::string::npos);
}

TEST(LintTest, DetectsShortPhaseUnderMPL) {
  LintOptions Options;
  Options.MPL = 1000;
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() {
      loop times 10 { branch a; }
      loop times 5000 { branch b; }
    }
  )",
                                Options);
  std::vector<Diagnostic> Short = withCode(Diags, "short-phase");
  ASSERT_EQ(Short.size(), 1u); // only the 10-element loop
  EXPECT_EQ(Short[0].Severity, DiagSeverity::Warning);
  // Disabled by default.
  EXPECT_TRUE(lint(R"(
    program t;
    method main() { loop times 10 { branch a; } }
  )")
                  .empty());
}

TEST(LintTest, BundledExamplesAreClean) {
  for (const char *Name : {"sample.jp", "recursive.jp"}) {
    std::string Path =
        std::string(OPD_SOURCE_DIR) + "/examples/" + Name;
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << Path;
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    DiagnosticEngine Diags = lint(Buffer.str());
    EXPECT_LT(Diags.maxSeverity(), DiagSeverity::Warning)
        << Name << ":\n"
        << Diags.renderAll();
  }
}

TEST(LintTest, JsonOutputCarriesCodesAndCounts) {
  DiagnosticEngine Diags = lint(R"(
    program t;
    method main() { when (0) { branch a; } }
    method orphan() { branch b; }
  )");
  std::string Json = renderDiagnosticsJSON(Diags, "fixture.jp");
  EXPECT_NE(Json.find("\"file\": \"fixture.jp\""), std::string::npos);
  EXPECT_NE(Json.find("\"code\": \"dead-method\""), std::string::npos);
  EXPECT_NE(Json.find("\"code\": \"unreachable-arm\""), std::string::npos);
  EXPECT_NE(Json.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_NE(Json.find("\"errors\": 0"), std::string::npos);
  EXPECT_NE(Json.find("\"warnings\": 2"), std::string::npos);
}

TEST(LintTest, ExitCodesFollowSeverity) {
  EXPECT_EQ(exitCodeForSeverity(DiagSeverity::Error, true), 2);
  EXPECT_EQ(exitCodeForSeverity(DiagSeverity::Warning, true), 1);
  EXPECT_EQ(exitCodeForSeverity(DiagSeverity::Note, true), 0);
  EXPECT_EQ(exitCodeForSeverity(DiagSeverity::Note, false), 0);
}
