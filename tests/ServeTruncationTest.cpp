//===- tests/ServeTruncationTest.cpp - Short-read framing tests -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// Truncation at every field boundary, one test per frame kind: a frame
// whose payload stops at any interior field boundary must be rejected
// by its parser (server→client kinds) or fail the session with
// `bad-frame` (client→server kinds), while a partially *delivered*
// frame — the stream cut inside the header or payload — must leave the
// receiver waiting for more bytes with no state change.
//
//===----------------------------------------------------------------------===//

#include "serve/DetectorCache.h"
#include "serve/Protocol.h"
#include "serve/Session.h"

#include "gtest/gtest.h"

#include <vector>

using namespace opd;

namespace {

std::vector<uint8_t> helloBytes(uint16_t Flags = 0, SiteIndex NumSites = 4) {
  HelloMsg M;
  M.Flags = Flags;
  M.NumSites = NumSites;
  M.Config.Window.CWSize = 4;
  M.Config.Window.TWSize = 4;
  M.Config.Window.SkipFactor = 2;
  std::vector<uint8_t> Out;
  appendHello(Out, M);
  return Out;
}

/// A frame of kind \p Kind carrying the given payload bytes.
std::vector<uint8_t> frameWithPayload(uint8_t Kind,
                                      const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Out;
  uint32_t Len = static_cast<uint32_t>(Payload.size()) + 1;
  Out.push_back(static_cast<uint8_t>(Len));
  Out.push_back(static_cast<uint8_t>(Len >> 8));
  Out.push_back(static_cast<uint8_t>(Len >> 16));
  Out.push_back(static_cast<uint8_t>(Len >> 24));
  Out.push_back(Kind);
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

/// Feeds a complete frame of \p Kind whose payload is the first
/// \p Boundary bytes of \p Full and expects the session to fail with
/// `bad-frame`.
void expectPayloadTruncationFails(uint8_t Kind,
                                  const std::vector<uint8_t> &Full,
                                  size_t Boundary, bool HandshakeFirst) {
  DetectorCache Cache;
  ServeLimits Limits;
  ServeSession Sess(1, Limits, Cache);
  if (HandshakeFirst) {
    std::vector<uint8_t> Hello = helloBytes();
    ASSERT_TRUE(Sess.feed(Hello.data(), Hello.size()));
    ASSERT_EQ(Sess.state(), ServeSession::State::Streaming);
  }
  std::vector<uint8_t> Payload(Full.begin(), Full.begin() + Boundary);
  std::vector<uint8_t> Bytes = frameWithPayload(Kind, Payload);
  Sess.feed(Bytes.data(), Bytes.size());
  EXPECT_EQ(Sess.state(), ServeSession::State::Failed)
      << "payload truncated at byte " << Boundary << " was accepted";
  EXPECT_EQ(Sess.error(), ServeError::BadFrame)
      << "payload truncated at byte " << Boundary;
}

/// Extracts the payload of the single frame in \p Bytes.
std::vector<uint8_t> payloadOf(const std::vector<uint8_t> &Bytes) {
  return std::vector<uint8_t>(Bytes.begin() + 5, Bytes.end());
}

/// Expects \p Parse to reject every proper field-boundary prefix of
/// \p Payload and accept the full payload.
template <typename ParseFn>
void expectParserBoundaries(MsgKind Kind, const std::vector<uint8_t> &Payload,
                            const std::vector<size_t> &Boundaries,
                            ParseFn Parse) {
  for (size_t B : Boundaries) {
    ASSERT_LT(B, Payload.size());
    Frame F;
    F.Kind = Kind;
    F.Payload = Payload.data();
    F.Len = B;
    EXPECT_FALSE(Parse(F)) << "payload truncated at byte " << B
                           << " was accepted";
  }
  Frame F;
  F.Kind = Kind;
  F.Payload = Payload.data();
  F.Len = Payload.size();
  EXPECT_TRUE(Parse(F)) << "full payload rejected";
}

//===----------------------------------------------------------------------===//
// Partial delivery: a cut stream is not an error
//===----------------------------------------------------------------------===//

TEST(ServeTruncation, PartialDeliveryNeverFailsTheSession) {
  // Deliver a valid handshake one byte at a time: the session must wait
  // at every prefix (header and payload alike) and accept at the end.
  std::vector<uint8_t> Hello = helloBytes();
  DetectorCache Cache;
  ServeLimits Limits;
  ServeSession Sess(1, Limits, Cache);
  for (size_t I = 0; I != Hello.size(); ++I) {
    ASSERT_TRUE(Sess.feed(&Hello[I], 1));
    if (I + 1 != Hello.size()) {
      ASSERT_EQ(Sess.state(), ServeSession::State::AwaitHello)
          << "prefix of " << (I + 1) << " bytes changed the state";
    }
  }
  EXPECT_EQ(Sess.state(), ServeSession::State::Streaming);
}

TEST(ServeTruncation, FrameReaderWaitsAtEveryHeaderBoundary) {
  std::vector<uint8_t> Hello = helloBytes();
  for (size_t Prefix = 0; Prefix != 5; ++Prefix) {
    FrameReader R;
    R.feed(Hello.data(), Prefix);
    Frame F;
    EXPECT_EQ(R.next(F), FrameReader::Status::NeedMore)
        << "header prefix of " << Prefix << " bytes";
  }
}

//===----------------------------------------------------------------------===//
// Client→server kinds: truncated payloads fail the session
//===----------------------------------------------------------------------===//

TEST(ServeTruncation, HelloPayloadBoundaries) {
  // Field boundaries of the 37-byte handshake payload: magic, version,
  // flags, NumSites, CWSize, TWSize, SkipFactor, the five enum bytes,
  // and one byte short of the trailing f64.
  std::vector<uint8_t> Full = payloadOf(helloBytes());
  ASSERT_EQ(Full.size(), 37u);
  for (size_t B : {size_t(0), size_t(4), size_t(6), size_t(8), size_t(12),
                   size_t(16), size_t(20), size_t(24), size_t(25),
                   size_t(26), size_t(27), size_t(28), size_t(29),
                   size_t(36)})
    expectPayloadTruncationFails(uint8_t(MsgKind::Hello), Full, B,
                                 /*HandshakeFirst=*/false);
}

TEST(ServeTruncation, ElementsPayloadBoundaries) {
  SiteIndex Elems[2] = {1, 2};
  std::vector<uint8_t> Bytes;
  appendElements(Bytes, Elems, 2);
  std::vector<uint8_t> Full = payloadOf(Bytes);
  ASSERT_EQ(Full.size(), 12u); // count + 2 elements
  // Inside the count, after the count, and mid-element. Every prefix is
  // a count/length mismatch.
  for (size_t B : {size_t(0), size_t(3), size_t(4), size_t(6), size_t(8),
                   size_t(11)})
    expectPayloadTruncationFails(uint8_t(MsgKind::Elements), Full, B,
                                 /*HandshakeFirst=*/true);
}

TEST(ServeTruncation, ElementsCountMismatchFails) {
  // A structurally complete payload whose count disagrees with its
  // length in either direction.
  DetectorCache Cache;
  ServeLimits Limits;
  for (uint32_t Claim : {3u, 1u, 0u}) {
    ServeSession Sess(1, Limits, Cache);
    std::vector<uint8_t> Hello = helloBytes();
    ASSERT_TRUE(Sess.feed(Hello.data(), Hello.size()));
    std::vector<uint8_t> Payload;
    for (unsigned I = 0; I != 4; ++I)
      Payload.push_back(static_cast<uint8_t>(Claim >> (8 * I)));
    Payload.insert(Payload.end(), 8, 0); // Two real elements.
    std::vector<uint8_t> Bytes =
        frameWithPayload(uint8_t(MsgKind::Elements), Payload);
    Sess.feed(Bytes.data(), Bytes.size());
    EXPECT_EQ(Sess.state(), ServeSession::State::Failed)
        << "claimed count " << Claim;
    EXPECT_EQ(Sess.error(), ServeError::BadFrame)
        << "claimed count " << Claim;
  }
}

TEST(ServeTruncation, FinishPayloadMustBeEmpty) {
  // Finish's only boundary is zero: any payload byte is structural
  // garbage.
  DetectorCache Cache;
  ServeLimits Limits;
  ServeSession Sess(1, Limits, Cache);
  std::vector<uint8_t> Hello = helloBytes();
  ASSERT_TRUE(Sess.feed(Hello.data(), Hello.size()));
  std::vector<uint8_t> Bytes =
      frameWithPayload(uint8_t(MsgKind::Finish), {0});
  Sess.feed(Bytes.data(), Bytes.size());
  EXPECT_EQ(Sess.state(), ServeSession::State::Failed);
  EXPECT_EQ(Sess.error(), ServeError::BadFrame);
}

//===----------------------------------------------------------------------===//
// Server→client kinds: truncated payloads are rejected by the parsers
//===----------------------------------------------------------------------===//

TEST(ServeTruncation, HelloAckPayloadBoundaries) {
  HelloAckMsg M;
  M.SessionId = 42;
  M.BatchSize = 2;
  M.MaxBatch = 8;
  std::vector<uint8_t> Bytes;
  appendHelloAck(Bytes, M);
  std::vector<uint8_t> Payload = payloadOf(Bytes);
  ASSERT_EQ(Payload.size(), 16u); // id, batch, max-batch
  expectParserBoundaries(MsgKind::HelloAck, Payload, {0, 8, 12},
                         [](const Frame &F) {
                           HelloAckMsg Out;
                           return parseHelloAck(F, Out);
                         });
}

TEST(ServeTruncation, TransitionPayloadBoundaries) {
  TransitionMsg M;
  M.Offset = 100;
  M.NewState = PhaseState::InPhase;
  M.HasAnchor = true;
  M.Anchor = 90;
  std::vector<uint8_t> Bytes;
  appendTransition(Bytes, M);
  std::vector<uint8_t> Payload = payloadOf(Bytes);
  ASSERT_EQ(Payload.size(), 18u); // offset, state, has-anchor, anchor
  expectParserBoundaries(MsgKind::Transition, Payload, {0, 8, 9, 10, 17},
                         [](const Frame &F) {
                           TransitionMsg Out;
                           return parseTransition(F, Out);
                         });
}

TEST(ServeTruncation, ProgressPayloadBoundaries) {
  ProgressMsg M;
  M.Ingested = 1000;
  std::vector<uint8_t> Bytes;
  appendProgress(Bytes, M);
  std::vector<uint8_t> Payload = payloadOf(Bytes);
  ASSERT_EQ(Payload.size(), 8u); // ingested
  expectParserBoundaries(MsgKind::Progress, Payload, {0, 4, 7},
                         [](const Frame &F) {
                           ProgressMsg Out;
                           return parseProgress(F, Out);
                         });
}

TEST(ServeTruncation, FinishedPayloadBoundaries) {
  FinishedMsg M;
  M.Elements = 10;
  M.Transitions = 2;
  M.FinalState = PhaseState::InPhase;
  std::vector<uint8_t> Bytes;
  appendFinished(Bytes, M);
  std::vector<uint8_t> Payload = payloadOf(Bytes);
  ASSERT_EQ(Payload.size(), 17u); // elements, transitions, final state
  expectParserBoundaries(MsgKind::Finished, Payload, {0, 8, 16},
                         [](const Frame &F) {
                           FinishedMsg Out;
                           return parseFinished(F, Out);
                         });
}

TEST(ServeTruncation, ErrorPayloadBoundaries) {
  std::vector<uint8_t> Bytes;
  appendError(Bytes, ServeError::BadFrame, "boom");
  std::vector<uint8_t> Payload = payloadOf(Bytes);
  ASSERT_EQ(Payload.size(), 12u); // code, reserved, msg-len, "boom"
  // Boundaries inside the fixed header and inside the message text (a
  // truncated message is a MsgLen mismatch).
  expectParserBoundaries(MsgKind::Error, Payload, {0, 2, 4, 7, 8, 11},
                         [](const Frame &F) {
                           ErrorMsg Out;
                           return parseError(F, Out);
                         });
}

} // namespace
