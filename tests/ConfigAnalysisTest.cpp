//===- tests/ConfigAnalysisTest.cpp - Config-space analyzer tests -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the config-space static analyzer the hard way: every merge
/// rule's claim of output equivalence is checked by brute force — both
/// class members run over real workload traces and their full state
/// sequences must be identical, not merely their scores.
///
//===----------------------------------------------------------------------===//

#include "analysis/ConfigAnalysis.h"
#include "analysis/Lint.h"
#include "core/DetectorRunner.h"
#include "harness/Experiment.h"
#include "harness/Sweep.h"
#include "metrics/Scoring.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

/// Two small workloads at two MPLs; shared across tests.
const std::vector<BenchmarkData> &testBenchmarks() {
  static const std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks({"jess", "jlex"}, {1000, 10000}, /*Scale=*/0.25);
  return Benchmarks;
}

bool sameStates(const StateSequence &A, const StateSequence &B) {
  if (A.size() != B.size() || A.runs().size() != B.runs().size())
    return false;
  for (size_t I = 0; I != A.runs().size(); ++I) {
    const StateRun &RA = A.runs()[I];
    const StateRun &RB = B.runs()[I];
    if (RA.Begin != RB.Begin || RA.Length != RB.Length ||
        RA.State != RB.State)
      return false;
  }
  return true;
}

DetectorRun runConfig(const DetectorConfig &Config, const BranchTrace &Trace) {
  std::unique_ptr<PhaseDetector> Detector =
      makeDetector(Config, Trace.numSites());
  return runDetector(*Detector, Trace);
}

/// Asserts that \p A and \p B produce byte-identical state sequences and
/// identical per-MPL scores on every test benchmark; \p CheckAnchored
/// additionally requires identical anchor-corrected phases.
void expectEquivalent(const DetectorConfig &A, const DetectorConfig &B,
                      bool CheckAnchored) {
  for (const BenchmarkData &Bench : testBenchmarks()) {
    DetectorRun RunA = runConfig(A, Bench.Trace);
    DetectorRun RunB = runConfig(B, Bench.Trace);
    EXPECT_TRUE(sameStates(RunA.States, RunB.States))
        << Bench.Name << ": " << A.describe() << " vs " << B.describe();
    EXPECT_EQ(RunA.DetectedPhases, RunB.DetectedPhases) << Bench.Name;
    if (CheckAnchored) {
      EXPECT_EQ(RunA.AnchoredPhases, RunB.AnchoredPhases) << Bench.Name;
    }
    for (const BaselineSolution &Baseline : Bench.Baselines) {
      AccuracyScore SA = scoreDetection(RunA.States, Baseline.states());
      AccuracyScore SB = scoreDetection(RunB.States, Baseline.states());
      EXPECT_EQ(SA.Score, SB.Score) << Bench.Name;
      EXPECT_EQ(SA.Correlation, SB.Correlation) << Bench.Name;
      EXPECT_EQ(SA.Sensitivity, SB.Sensitivity) << Bench.Name;
      EXPECT_EQ(SA.FalsePositives, SB.FalsePositives) << Bench.Name;
    }
  }
}

DetectorConfig baseConfig() {
  DetectorConfig C;
  C.Window.CWSize = 500;
  C.Window.TWSize = 500;
  C.Window.SkipFactor = 10;
  C.Window.TWPolicy = TWPolicyKind::Constant;
  C.Window.Anchor = AnchorKind::RightmostNoisy;
  C.Window.Resize = ResizeKind::Slide;
  C.Model = ModelKind::UnweightedSet;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  return C;
}

/// A small spec that exercises every merge rule: saturated and
/// unsatisfiable analyzers, both policies, dead anchors/resizes, and the
/// Fixed-Interval duplicate (CW 200 appears in SkipFactors).
SweepSpec degenerateSpec() {
  SweepSpec Spec;
  Spec.CWSizes = {200, 400};
  Spec.SkipFactors = {1, 200};
  Spec.IncludeFixedInterval = true;
  Spec.Models = {ModelKind::UnweightedSet, ModelKind::WeightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6},
                    {AnalyzerKind::Threshold, 0.0},
                    {AnalyzerKind::Threshold, 1.5},
                    {AnalyzerKind::Average, 1.0},
                    {AnalyzerKind::Hysteresis, 2.0}};
  Spec.Anchors = {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy};
  Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  return Spec;
}

std::vector<std::string> diagnosticCodes(const DiagnosticEngine &Diags) {
  std::vector<std::string> Codes;
  for (const Diagnostic &D : Diags.diagnostics())
    Codes.push_back(D.Code);
  return Codes;
}

bool hasCode(const DiagnosticEngine &Diags, const std::string &Code) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Code == Code)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Canonicalizer basics
//===----------------------------------------------------------------------===//

TEST(ConfigCanonTest, NormalConfigUntouched) {
  DetectorConfig C = baseConfig();
  CanonResult Result = canonicalizeConfig(C);
  EXPECT_EQ(Result.Canonical, C);
  EXPECT_TRUE(Result.Applied.empty());
}

TEST(ConfigCanonTest, IdempotentAcrossTheDegenerateSpace) {
  for (bool Anchored : {false, true}) {
    ConfigCanonOptions Options;
    Options.AnchoredScoring = Anchored;
    for (const DetectorConfig &C : enumerateCrossProduct(degenerateSpec())) {
      CanonResult First = canonicalizeConfig(C, Options);
      CanonResult Second = canonicalizeConfig(First.Canonical, Options);
      EXPECT_EQ(Second.Canonical, First.Canonical);
      EXPECT_TRUE(Second.Applied.empty())
          << C.describe() << " -> " << First.Canonical.describe();
    }
  }
}

TEST(ConfigCanonTest, ConfigKeyIsInjectiveOverTheDegenerateSpace) {
  std::vector<DetectorConfig> Configs =
      enumerateCrossProduct(degenerateSpec());
  for (const DetectorConfig &A : Configs)
    for (const DetectorConfig &B : Configs)
      EXPECT_EQ(A == B, configKey(A) == configKey(B));
}

TEST(ConfigCanonTest, RuleNamesAreStable) {
  EXPECT_STREQ(mergeRuleName(MergeRule::DeadResizeConstantTW),
               "dead-resize-constant-tw");
  EXPECT_STREQ(mergeRuleName(MergeRule::SaturatedAnalyzerAlwaysP),
               "saturated-analyzer-always-p");
  EXPECT_STREQ(mergeRuleName(MergeRule::UnsatisfiableAnalyzerAlwaysT),
               "unsatisfiable-analyzer-always-t");
}

TEST(ConfigCanonTest, AnalyzerClassification) {
  EXPECT_EQ(classifyAnalyzer(AnalyzerKind::Threshold, 0.6),
            AnalyzerRange::Normal);
  EXPECT_EQ(classifyAnalyzer(AnalyzerKind::Threshold, 0.0),
            AnalyzerRange::AlwaysInPhase);
  EXPECT_EQ(classifyAnalyzer(AnalyzerKind::Threshold, 1.0),
            AnalyzerRange::Normal);
  EXPECT_EQ(classifyAnalyzer(AnalyzerKind::Threshold, 1.5),
            AnalyzerRange::AlwaysTransition);
  EXPECT_EQ(classifyAnalyzer(AnalyzerKind::Average, 1.0),
            AnalyzerRange::AlwaysInPhase);
  EXPECT_EQ(classifyAnalyzer(AnalyzerKind::Average, 0.2),
            AnalyzerRange::Normal);
  EXPECT_EQ(classifyAnalyzer(AnalyzerKind::Hysteresis, 0.0),
            AnalyzerRange::AlwaysInPhase);
  // Negative enter thresholds are unconstructible (derived exit would
  // exceed them); classified Normal so no merge is ever claimed.
  EXPECT_EQ(classifyAnalyzer(AnalyzerKind::Hysteresis, -0.5),
            AnalyzerRange::Normal);
  EXPECT_EQ(classifyAnalyzer(AnalyzerKind::Hysteresis, 1.5),
            AnalyzerRange::AlwaysTransition);
  EXPECT_EQ(classifyAnalyzer(AnalyzerKind::Hysteresis, 0.7),
            AnalyzerRange::Normal);
}

//===----------------------------------------------------------------------===//
// Brute-force validation of every merge rule
//===----------------------------------------------------------------------===//

TEST(MergeRuleTest, DeadResizeConstantTW) {
  DetectorConfig A = baseConfig();
  DetectorConfig B = A;
  B.Window.Resize = ResizeKind::Move;
  // A Constant TW never resizes; even the anchored output must match.
  expectEquivalent(A, B, /*CheckAnchored=*/true);
  EXPECT_EQ(canonicalizeConfig(A).Canonical, canonicalizeConfig(B).Canonical);
}

TEST(MergeRuleTest, DeadAnchorUnanchored) {
  DetectorConfig A = baseConfig();
  DetectorConfig B = A;
  B.Window.Anchor = AnchorKind::LeftmostNonNoisy;
  // Plain states match; the anchor only moves the anchored starts.
  expectEquivalent(A, B, /*CheckAnchored=*/false);

  ConfigCanonOptions Unanchored;
  Unanchored.AnchoredScoring = false;
  EXPECT_EQ(canonicalizeConfig(A, Unanchored).Canonical,
            canonicalizeConfig(B, Unanchored).Canonical);
  // With anchored scoring observed, the merge must NOT happen.
  EXPECT_NE(canonicalizeConfig(A).Canonical, canonicalizeConfig(B).Canonical);
}

TEST(MergeRuleTest, SaturatedAnalyzerAlwaysP) {
  DetectorConfig A = baseConfig();
  A.TheAnalyzer = AnalyzerKind::Threshold;
  A.AnalyzerParam = 0.0;
  DetectorConfig B = A;
  B.TheAnalyzer = AnalyzerKind::Average;
  B.AnalyzerParam = 1.0;
  DetectorConfig C = A;
  C.TheAnalyzer = AnalyzerKind::Hysteresis;
  C.AnalyzerParam = 0.0;
  expectEquivalent(A, B, /*CheckAnchored=*/true);
  expectEquivalent(A, C, /*CheckAnchored=*/true);
  EXPECT_EQ(canonicalizeConfig(A).Canonical, canonicalizeConfig(B).Canonical);
  EXPECT_EQ(canonicalizeConfig(A).Canonical, canonicalizeConfig(C).Canonical);
}

TEST(MergeRuleTest, DeadModelSaturated) {
  DetectorConfig A = baseConfig();
  A.AnalyzerParam = 0.0;
  DetectorConfig B = A;
  B.Model = ModelKind::WeightedSet;
  DetectorConfig C = A;
  C.Model = ModelKind::ManhattanBBV;
  expectEquivalent(A, B, /*CheckAnchored=*/true);
  expectEquivalent(A, C, /*CheckAnchored=*/true);
  EXPECT_EQ(canonicalizeConfig(A).Canonical, canonicalizeConfig(B).Canonical);
}

TEST(MergeRuleTest, DeadPolicySaturated) {
  DetectorConfig A = baseConfig();
  A.AnalyzerParam = 0.0;
  DetectorConfig B = A;
  B.Window.TWPolicy = TWPolicyKind::Adaptive;
  // The single phase start anchors before any resize, so even the
  // anchored output is policy-independent under an always-P analyzer.
  expectEquivalent(A, B, /*CheckAnchored=*/true);
  EXPECT_EQ(canonicalizeConfig(A).Canonical, canonicalizeConfig(B).Canonical);

  DetectorConfig C = B;
  C.Window.Resize = ResizeKind::Move;
  expectEquivalent(A, C, /*CheckAnchored=*/true);
}

TEST(MergeRuleTest, DeadWindowSplitSaturated) {
  DetectorConfig A = baseConfig();
  A.AnalyzerParam = 0.0;
  A.Window.CWSize = 600;
  A.Window.TWSize = 400;
  A.Window.SkipFactor = 7;
  DetectorConfig B = A;
  B.Window.CWSize = 999;
  B.Window.TWSize = 1;
  // Only CW+TW gates the flip; the anchored starts DO depend on the
  // split, so this merge exists only for unanchored scoring.
  expectEquivalent(A, B, /*CheckAnchored=*/false);

  ConfigCanonOptions Unanchored;
  Unanchored.AnchoredScoring = false;
  EXPECT_EQ(canonicalizeConfig(A, Unanchored).Canonical,
            canonicalizeConfig(B, Unanchored).Canonical);
  EXPECT_NE(canonicalizeConfig(A).Canonical, canonicalizeConfig(B).Canonical);
}

TEST(MergeRuleTest, UnsatisfiableAnalyzerAlwaysT) {
  DetectorConfig A = baseConfig();
  A.AnalyzerParam = 1.5;
  DetectorConfig B = baseConfig();
  B.TheAnalyzer = AnalyzerKind::Hysteresis;
  B.AnalyzerParam = 2.0;
  B.Window.CWSize = 900;
  B.Window.TWSize = 300;
  B.Window.SkipFactor = 50;
  B.Window.TWPolicy = TWPolicyKind::Adaptive;
  B.Model = ModelKind::WeightedSet;
  // Entirely different windows, model, and policy: the output is all-T
  // either way, so the whole configuration is dead.
  expectEquivalent(A, B, /*CheckAnchored=*/true);
  EXPECT_EQ(canonicalizeConfig(A).Canonical, canonicalizeConfig(B).Canonical);

  for (const BenchmarkData &Bench : testBenchmarks()) {
    DetectorRun Run = runConfig(A, Bench.Trace);
    ASSERT_EQ(Run.States.runs().size(), 1u);
    EXPECT_EQ(Run.States.runs()[0].State, PhaseState::Transition);
    EXPECT_TRUE(Run.DetectedPhases.empty());
  }
}

/// The negative case the issue demands: a rule the checker cannot prove
/// stays unmerged. WeightedSet and ManhattanBBV similarities agree
/// mathematically (sum-of-mins == 1 - L1/2) but round differently in
/// floating point, so configs differing only in that choice must stay in
/// separate classes.
TEST(MergeRuleTest, ManhattanWeightedStayUnmerged) {
  DetectorConfig A = baseConfig();
  A.Model = ModelKind::WeightedSet;
  DetectorConfig B = A;
  B.Model = ModelKind::ManhattanBBV;
  for (bool Anchored : {false, true}) {
    ConfigCanonOptions Options;
    Options.AnchoredScoring = Anchored;
    EXPECT_NE(canonicalizeConfig(A, Options).Canonical,
              canonicalizeConfig(B, Options).Canonical);
  }
}

//===----------------------------------------------------------------------===//
// Partitioning
//===----------------------------------------------------------------------===//

TEST(PartitionTest, FixedIntervalDuplicatesMergeAsIdentical) {
  SweepSpec Spec;
  Spec.CWSizes = {200};
  Spec.SkipFactors = {200};
  Spec.TWPolicies = {TWPolicyKind::Constant};
  Spec.IncludeFixedInterval = true;
  Spec.Models = {ModelKind::UnweightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6}};

  std::vector<DetectorConfig> Configs = enumerateCrossProduct(Spec);
  ASSERT_EQ(Configs.size(), 2u);
  ConfigPartition Partition = partitionConfigs(Configs);
  ASSERT_EQ(Partition.Classes.size(), 1u);
  ASSERT_EQ(Partition.Classes[0].Rules.size(), 1u);
  EXPECT_EQ(Partition.Classes[0].Rules[0], MergeRule::IdenticalConfig);
}

TEST(PartitionTest, ClassMembersCoverEveryConfigExactlyOnce) {
  std::vector<DetectorConfig> Configs =
      enumerateCrossProduct(degenerateSpec());
  ConfigPartition Partition = partitionConfigs(Configs);
  std::vector<bool> Seen(Configs.size(), false);
  for (size_t ClassIdx = 0; ClassIdx != Partition.Classes.size();
       ++ClassIdx) {
    const ConfigClass &Class = Partition.Classes[ClassIdx];
    EXPECT_EQ(Class.Representative, Class.Members.front());
    for (size_t Member : Class.Members) {
      EXPECT_FALSE(Seen[Member]);
      Seen[Member] = true;
      EXPECT_EQ(Partition.ClassOf[Member], ClassIdx);
    }
  }
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

TEST(PartitionTest, PaperCrossProductPrunesAtLeast20Percent) {
  for (bool Anchored : {false, true}) {
    SweepAnalysisOptions Options;
    Options.Canon.AnchoredScoring = Anchored;
    Options.RawCrossProduct = true;
    SweepAnalysis Analysis = analyzeSweep(paperCrossSpec(), Options);
    EXPECT_EQ(Analysis.NumConfigs, 10080u);
    EXPECT_GE(Analysis.RunsPruned * 100, Analysis.NumConfigs * 20)
        << "anchored=" << Anchored;
  }
}

// The paper preset's shared-scan plan: the pruned space collapses to
// one trace pass per (model, CW, TW) shape. 28 passes cover every
// representative; the largest group's size depends on how far the
// canonicalizer merges (anchored scoring forbids the anchor-field
// merge, leaving more representatives per shape). A change here means
// either the paper space or the plan keying moved — both are
// deliberate events.
TEST(PartitionTest, PaperCrossProductSharedScanPlanIsPinned) {
  for (bool Anchored : {false, true}) {
    SweepAnalysisOptions Options;
    Options.Canon.AnchoredScoring = Anchored;
    Options.RawCrossProduct = true;
    SweepAnalysis Analysis = analyzeSweep(paperCrossSpec(), Options);
    EXPECT_EQ(Analysis.NumSharedGroups, 28u) << "anchored=" << Anchored;
    EXPECT_EQ(Analysis.LargestSharedGroup, Anchored ? 260u : 210u)
        << "anchored=" << Anchored;
  }
}

//===----------------------------------------------------------------------===//
// Pruned sweeps
//===----------------------------------------------------------------------===//

TEST(PrunedSweepTest, BitIdenticalScoresAndCorrectStats) {
  SweepSpec Spec = degenerateSpec();
  std::vector<DetectorConfig> Configs = enumerateCrossProduct(Spec);

  for (bool Anchored : {false, true}) {
    SweepOptions Plain;
    Plain.ScoreAnchored = Anchored;
    SweepOptions Pruned = Plain;
    Pruned.Prune = true;

    for (const BenchmarkData &Bench : testBenchmarks()) {
      SweepStats PlainStats, PrunedStats;
      std::vector<RunScores> Full =
          runSweep(Bench.Trace, Bench.Baselines, Configs, Plain,
                   &PlainStats);
      std::vector<RunScores> Reduced =
          runSweep(Bench.Trace, Bench.Baselines, Configs, Pruned,
                   &PrunedStats);

      ASSERT_EQ(Full.size(), Reduced.size());
      for (size_t I = 0; I != Full.size(); ++I) {
        EXPECT_EQ(Reduced[I].Config, Configs[I]);
        ASSERT_EQ(Full[I].PerMPL.size(), Reduced[I].PerMPL.size());
        for (size_t M = 0; M != Full[I].PerMPL.size(); ++M) {
          EXPECT_EQ(Full[I].PerMPL[M].Score, Reduced[I].PerMPL[M].Score);
          EXPECT_EQ(Full[I].PerMPL[M].Correlation,
                    Reduced[I].PerMPL[M].Correlation);
          EXPECT_EQ(Full[I].PerMPL[M].Sensitivity,
                    Reduced[I].PerMPL[M].Sensitivity);
          EXPECT_EQ(Full[I].PerMPL[M].FalsePositives,
                    Reduced[I].PerMPL[M].FalsePositives);
        }
        ASSERT_EQ(Full[I].AnchoredPerMPL.size(),
                  Reduced[I].AnchoredPerMPL.size());
        for (size_t M = 0; M != Full[I].AnchoredPerMPL.size(); ++M)
          EXPECT_EQ(Full[I].AnchoredPerMPL[M].Score,
                    Reduced[I].AnchoredPerMPL[M].Score);
      }

      EXPECT_EQ(PlainStats.NumConfigs, Configs.size());
      EXPECT_EQ(PlainStats.RunsExecuted, Configs.size());
      EXPECT_EQ(PlainStats.RunsPruned, 0u);

      ConfigCanonOptions Canon;
      Canon.AnchoredScoring = Anchored;
      size_t NumClasses = partitionConfigs(Configs, Canon).Classes.size();
      EXPECT_EQ(PrunedStats.NumConfigs, Configs.size());
      EXPECT_EQ(PrunedStats.RunsExecuted, NumClasses);
      EXPECT_EQ(PrunedStats.RunsPruned, Configs.size() - NumClasses);
      EXPECT_LT(PrunedStats.RunsExecuted, PrunedStats.NumConfigs);
    }
  }
}

TEST(PrunedSweepTest, BestScoreSlicesMatchUnpruned) {
  // The paper's headline numbers are bestScore() maxima over slices of
  // the space; pruning must reproduce them bit-for-bit per table slice.
  SweepSpec Spec;
  Spec.CWSizes = {250, 500};
  Spec.SkipFactors = {10, 250};
  Spec.IncludeFixedInterval = true;
  Spec.Models = {ModelKind::UnweightedSet, ModelKind::WeightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6},
                    {AnalyzerKind::Threshold, 0.0},
                    {AnalyzerKind::Average, 0.05}};
  Spec.Anchors = {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy};
  Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  std::vector<DetectorConfig> Configs = enumerateCrossProduct(Spec);

  SweepOptions Pruned;
  Pruned.Prune = true;
  const BenchmarkData &Bench = testBenchmarks()[0];
  std::vector<RunScores> Full =
      runSweep(Bench.Trace, Bench.Baselines, Configs);
  std::vector<RunScores> Reduced =
      runSweep(Bench.Trace, Bench.Baselines, Configs, Pruned);

  for (size_t MPLIdx = 0; MPLIdx != Bench.MPLs.size(); ++MPLIdx) {
    for (TWPolicyKind Policy :
         {TWPolicyKind::Constant, TWPolicyKind::Adaptive}) {
      auto Slice = [&](const DetectorConfig &C) {
        return C.Window.TWPolicy == Policy && !C.isFixedInterval();
      };
      EXPECT_EQ(bestScore(Full, MPLIdx, Slice),
                bestScore(Reduced, MPLIdx, Slice));
    }
    auto Fixed = [](const DetectorConfig &C) { return C.isFixedInterval(); };
    EXPECT_EQ(bestScore(Full, MPLIdx, Fixed),
              bestScore(Reduced, MPLIdx, Fixed));
    for (ModelKind Model :
         {ModelKind::UnweightedSet, ModelKind::WeightedSet}) {
      auto Slice = [&](const DetectorConfig &C) { return C.Model == Model; };
      EXPECT_EQ(bestScore(Full, MPLIdx, Slice),
                bestScore(Reduced, MPLIdx, Slice));
    }
  }
}

TEST(RunSweepDeathTest, RejectsEmptyConfigLists) {
  const BenchmarkData &Bench = testBenchmarks()[0];
  EXPECT_DEATH(runSweep(Bench.Trace, Bench.Baselines, {}),
               "empty configuration list");
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(ConfigLintTest, CleanSpecStaysClean) {
  DiagnosticEngine Diags;
  lintSweepSpec(benchSweepSpec("table2", paperAnalyzers()), {}, Diags);
  EXPECT_TRUE(Diags.empty()) << Diags.renderAll();
}

TEST(ConfigLintTest, AllBenchSpecsAndThePaperSpaceAreWarningFree) {
  for (const std::string &Name : benchSweepNames()) {
    DiagnosticEngine Diags;
    lintSweepSpec(benchSweepSpec(Name, paperAnalyzers()), {}, Diags);
    EXPECT_LT(Diags.maxSeverity(), DiagSeverity::Warning)
        << Name << ":\n" << Diags.renderAll();
  }
  DiagnosticEngine Diags;
  lintSweepSpec(paperCrossSpec(), {}, Diags);
  EXPECT_LT(Diags.maxSeverity(), DiagSeverity::Warning)
      << Diags.renderAll();
}

TEST(ConfigLintTest, EmptyDimensionIsAnError) {
  SweepSpec Spec = benchSweepSpec("table2", paperAnalyzers());
  Spec.CWSizes.clear();
  DiagnosticEngine Diags;
  lintSweepSpec(Spec, {}, Diags);
  EXPECT_TRUE(hasCode(Diags, "empty-dimension"));
  EXPECT_EQ(Diags.maxSeverity(), DiagSeverity::Error);
  EXPECT_EQ(exitCodeForSeverity(Diags.maxSeverity(), !Diags.empty()), 2);
}

TEST(ConfigLintTest, EmptyPolicyDimensionWithFixedIntervalIsAWarning) {
  SweepSpec Spec = benchSweepSpec("table2", paperAnalyzers());
  Spec.TWPolicies.clear();
  DiagnosticEngine Diags;
  lintSweepSpec(Spec, {}, Diags);
  EXPECT_TRUE(hasCode(Diags, "empty-dimension"));
  EXPECT_EQ(Diags.maxSeverity(), DiagSeverity::Warning);
}

TEST(ConfigLintTest, ZeroWindowIsAnError) {
  SweepSpec Spec = benchSweepSpec("table2", paperAnalyzers());
  Spec.SkipFactors = {0};
  DiagnosticEngine Diags;
  lintSweepSpec(Spec, {}, Diags);
  EXPECT_TRUE(hasCode(Diags, "empty-window"));
  EXPECT_EQ(Diags.maxSeverity(), DiagSeverity::Error);
}

TEST(ConfigLintTest, DegenerateAnalyzersAreFlagged) {
  SweepSpec Spec;
  Spec.CWSizes = {500};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.0},
                    {AnalyzerKind::Threshold, 1.5},
                    {AnalyzerKind::Hysteresis, 0.1},
                    {AnalyzerKind::Threshold, 1.0},
                    {AnalyzerKind::Average, -0.1}};
  DiagnosticEngine Diags;
  lintSweepSpec(Spec, {}, Diags);
  EXPECT_TRUE(hasCode(Diags, "analyzer-always-inphase"));
  EXPECT_TRUE(hasCode(Diags, "analyzer-always-transition"));
  EXPECT_TRUE(hasCode(Diags, "hysteresis-no-exit"));
  EXPECT_TRUE(hasCode(Diags, "threshold-knife-edge"));
  EXPECT_TRUE(hasCode(Diags, "average-nonpositive-delta"));
  EXPECT_EQ(Diags.maxSeverity(), DiagSeverity::Warning);
}

TEST(ConfigLintTest, NegativeHysteresisEnterIsAnError) {
  SweepSpec Spec;
  Spec.CWSizes = {500};
  Spec.Analyzers = {{AnalyzerKind::Hysteresis, -0.2}};
  DiagnosticEngine Diags;
  lintSweepSpec(Spec, {}, Diags);
  EXPECT_TRUE(hasCode(Diags, "invalid-analyzer-param"));
  EXPECT_EQ(Diags.maxSeverity(), DiagSeverity::Error);
}

TEST(ConfigLintTest, StructuralWarningsAndNotes) {
  SweepSpec Spec;
  Spec.CWSizes = {200, 200};
  Spec.SkipFactors = {1, 400, 200};
  Spec.IncludeFixedInterval = true;
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6}};
  DiagnosticEngine Diags;
  lintSweepSpec(Spec, {}, Diags);
  EXPECT_TRUE(hasCode(Diags, "duplicate-dimension-value"));
  EXPECT_TRUE(hasCode(Diags, "skip-exceeds-cw"));
  EXPECT_TRUE(hasCode(Diags, "fixed-interval-overlap"));
}

TEST(ConfigLintTest, TraceLengthChecks) {
  SweepSpec Spec;
  Spec.CWSizes = {600};
  Spec.SkipFactors = {1, 2000};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6}};
  ConfigLintOptions Options;
  Options.TraceLen = 1000;
  DiagnosticEngine Diags;
  lintSweepSpec(Spec, Options, Diags);
  EXPECT_TRUE(hasCode(Diags, "window-exceeds-trace"));
  EXPECT_TRUE(hasCode(Diags, "skip-exceeds-trace"));

  DiagnosticEngine Clean;
  Options.TraceLen = 100000;
  Spec.SkipFactors = {1};
  lintSweepSpec(Spec, Options, Clean);
  EXPECT_FALSE(hasCode(Clean, "window-exceeds-trace"));
  EXPECT_FALSE(hasCode(Clean, "skip-exceeds-trace"));
}

TEST(ConfigLintTest, SingleConfigLint) {
  DetectorConfig C = baseConfig();
  C.Window.SkipFactor = 750;
  C.AnalyzerParam = 1.5;
  ConfigLintOptions Options;
  Options.TraceLen = 900;
  DiagnosticEngine Diags;
  lintConfig(C, Options, Diags);
  std::vector<std::string> Codes = diagnosticCodes(Diags);
  EXPECT_EQ(Codes, (std::vector<std::string>{"analyzer-always-transition",
                                             "skip-exceeds-cw",
                                             "window-exceeds-trace"}));
}

//===----------------------------------------------------------------------===//
// Spec enumeration
//===----------------------------------------------------------------------===//

TEST(SweepSpecTest, RawCrossProductIsASupersetOfEnumerateConfigs) {
  SweepSpec Spec = degenerateSpec();
  std::vector<DetectorConfig> Raw = enumerateCrossProduct(Spec);
  std::vector<DetectorConfig> Cooked = enumerateConfigs(Spec);
  ASSERT_GE(Raw.size(), Cooked.size());
  for (const DetectorConfig &C : Cooked)
    EXPECT_NE(std::find(Raw.begin(), Raw.end(), C), Raw.end())
        << C.describe();
}

TEST(SweepSpecTest, PaperCrossSpecHasTheDocumentedSize) {
  // 7 CW x 2 TW factors x 2 models x 10 analyzers x 2 anchors x
  // 2 resizes x (2 policies x 4 skips + fixed) = 10080.
  EXPECT_EQ(enumerateCrossProduct(paperCrossSpec()).size(), 10080u);
}

TEST(SweepSpecTest, BenchSpecFactoriesMatchTheFigures) {
  SweepSpec Fig7 = benchSweepSpec("fig7", reducedAnalyzers());
  EXPECT_EQ(Fig7.TWPolicies,
            std::vector<TWPolicyKind>{TWPolicyKind::Adaptive});
  EXPECT_EQ(Fig7.Anchors.size(), 2u);
  EXPECT_EQ(Fig7.Resizes.size(), 2u);
  SweepSpec Fig6 = benchSweepSpec("fig6", paperAnalyzers());
  EXPECT_EQ(Fig6.Models,
            std::vector<ModelKind>{ModelKind::UnweightedSet});
  SweepSpec Table2 = benchSweepSpec("table2", reducedAnalyzers());
  EXPECT_TRUE(Table2.IncludeFixedInterval);
  EXPECT_EQ(Table2.CWSizes.size(), 7u);
}

} // namespace
