//===- tests/IntegrationTest.cpp - Full-pipeline tests ------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests: workload -> traces -> oracle -> detector -> score,
/// plus sweep-harness behavior and the headline qualitative results the
/// paper reports (skip=1 beats fixed intervals; a perfect detector scores
/// 1.0; anchored scoring helps the adaptive policy).
///
//===----------------------------------------------------------------------===//

#include "core/DetectorRunner.h"
#include "harness/Experiment.h"
#include "harness/Sweep.h"
#include "metrics/Scoring.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

/// Shared small-scale benchmark set (built once; executing all workloads
/// per test would dominate the suite's runtime).
const std::vector<BenchmarkData> &smallBenchmarks() {
  static const std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks({"jess", "db", "jlex"}, {1000, 10000}, /*Scale=*/0.3);
  return Benchmarks;
}

} // namespace

TEST(IntegrationTest, PrepareBenchmarksBuildsEverything) {
  const std::vector<BenchmarkData> &Benchmarks = smallBenchmarks();
  ASSERT_EQ(Benchmarks.size(), 3u);
  for (const BenchmarkData &B : Benchmarks) {
    EXPECT_GT(B.Trace.size(), 0u);
    EXPECT_GT(B.CallLoop.size(), 0u);
    ASSERT_EQ(B.Baselines.size(), 2u);
    EXPECT_EQ(B.Baselines[0].totalElements(), B.Trace.size());
    EXPECT_EQ(B.mplIndex(10000), 1u);
  }
}

TEST(IntegrationTest, DetectorBeatsTrivialBaselines) {
  // A reasonable detector should outscore both the always-T and always-P
  // detectors on phase-rich workloads.
  const BenchmarkData &B = smallBenchmarks()[0]; // jess
  const BaselineSolution &Oracle = B.Baselines[1]; // MPL 10K

  DetectorConfig C;
  C.Window.CWSize = 5000;
  C.Window.TWSize = 5000;
  C.Window.TWPolicy = TWPolicyKind::Adaptive;
  C.Model = ModelKind::UnweightedSet;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  std::unique_ptr<PhaseDetector> D = makeDetector(C, B.Trace.numSites());
  DetectorRun Run = runDetector(*D, B.Trace);
  AccuracyScore S = scoreDetection(Run.States, Oracle.states());

  StateSequence AllT = StateSequence::fromPhases({}, B.Trace.size());
  StateSequence AllP =
      StateSequence::fromPhases({{0, B.Trace.size()}}, B.Trace.size());
  AccuracyScore ST = scoreDetection(AllT, Oracle.states());
  AccuracyScore SP = scoreDetection(AllP, Oracle.states());
  EXPECT_GT(S.Score, ST.Score);
  EXPECT_GT(S.Score, SP.Score);
}

TEST(IntegrationTest, OracleFedBackScoresPerfectly) {
  for (const BenchmarkData &B : smallBenchmarks()) {
    for (const BaselineSolution &Oracle : B.Baselines) {
      AccuracyScore S =
          scoreDetection(Oracle.states(), Oracle.states());
      EXPECT_DOUBLE_EQ(S.Score, 1.0) << B.Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Sweep harness
//===----------------------------------------------------------------------===//

TEST(SweepTest, EnumerateCountsMatchCrossProduct) {
  SweepSpec Spec;
  Spec.CWSizes = {500, 1000};
  Spec.Models = {ModelKind::UnweightedSet, ModelKind::WeightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6},
                    {AnalyzerKind::Average, 0.05}};
  Spec.TWPolicies = {TWPolicyKind::Constant, TWPolicyKind::Adaptive};
  Spec.IncludeFixedInterval = true;
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  // 2 CW x 2 models x 2 analyzers x (2 policies + fixed interval) = 24.
  EXPECT_EQ(Configs.size(), 24u);
  unsigned FixedCount = 0;
  for (const DetectorConfig &C : Configs)
    FixedCount += C.isFixedInterval() ? 1 : 0;
  EXPECT_EQ(FixedCount, 8u);
}

TEST(SweepTest, AnchorAndResizeOnlyMultiplyAdaptive) {
  SweepSpec Spec;
  Spec.CWSizes = {500};
  Spec.Models = {ModelKind::UnweightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6}};
  Spec.Anchors = {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy};
  Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  // Constant: 1; Adaptive: 2 anchors x 2 resizes = 4. Total 5.
  EXPECT_EQ(Configs.size(), 5u);
}

TEST(SweepTest, RunSweepScoresEveryConfigAgainstEveryMPL) {
  const BenchmarkData &B = smallBenchmarks()[1]; // db
  SweepSpec Spec;
  Spec.CWSizes = {500, 2000};
  Spec.Models = {ModelKind::UnweightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6},
                    {AnalyzerKind::Average, 0.1}};
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  SweepOptions Options;
  Options.ScoreAnchored = true;
  std::vector<RunScores> Runs =
      runSweep(B.Trace, B.Baselines, Configs, Options);
  ASSERT_EQ(Runs.size(), Configs.size());
  for (const RunScores &R : Runs) {
    ASSERT_EQ(R.PerMPL.size(), 2u);
    ASSERT_EQ(R.AnchoredPerMPL.size(), 2u);
    for (const AccuracyScore &S : R.PerMPL) {
      EXPECT_GE(S.Score, 0.0);
      EXPECT_LE(S.Score, 1.0);
    }
  }
}

TEST(SweepTest, BestScoreRespectsFilter) {
  const BenchmarkData &B = smallBenchmarks()[2]; // jlex
  SweepSpec Spec;
  Spec.CWSizes = {500};
  Spec.Models = {ModelKind::UnweightedSet, ModelKind::WeightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6}};
  std::vector<RunScores> Runs =
      runSweep(B.Trace, B.Baselines, enumerateConfigs(Spec), {});
  double BestAll =
      bestScore(Runs, 0, [](const DetectorConfig &) { return true; });
  double BestWeighted = bestScore(Runs, 0, [](const DetectorConfig &C) {
    return C.Model == ModelKind::WeightedSet;
  });
  EXPECT_GE(BestAll, BestWeighted);
  double BestNone =
      bestScore(Runs, 0, [](const DetectorConfig &) { return false; });
  EXPECT_DOUBLE_EQ(BestNone, -1.0);
}

TEST(SweepTest, SkipOneBeatsFixedIntervalOnAverage) {
  // The paper's headline window-policy result, checked on one benchmark
  // at small scale: skipFactor=1 detectors achieve a higher best score
  // than fixed-interval detectors (skip == CW size).
  const BenchmarkData &B = smallBenchmarks()[0]; // jess
  SweepSpec Spec;
  Spec.CWSizes = {500, 2000};
  Spec.Models = {ModelKind::UnweightedSet};
  Spec.Analyzers = paperAnalyzers();
  Spec.IncludeFixedInterval = true;
  std::vector<RunScores> Runs =
      runSweep(B.Trace, B.Baselines, enumerateConfigs(Spec), {});
  double BestSkip1 = bestScore(Runs, 0, [](const DetectorConfig &C) {
    return C.Window.SkipFactor == 1;
  });
  double BestFixed = bestScore(Runs, 0, [](const DetectorConfig &C) {
    return C.isFixedInterval();
  });
  EXPECT_GT(BestSkip1, BestFixed);
}

TEST(IntegrationTest, AnchoredScoringHelpsAdaptivePolicy) {
  // Figure 8's mechanism: anchor-corrected starts should not hurt, and
  // typically improve, the adaptive detector's score.
  const BenchmarkData &B = smallBenchmarks()[2]; // jlex
  SweepSpec Spec;
  Spec.CWSizes = {2000};
  Spec.TWPolicies = {TWPolicyKind::Adaptive};
  Spec.Models = {ModelKind::UnweightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6}};
  SweepOptions Options;
  Options.ScoreAnchored = true;
  std::vector<RunScores> Runs =
      runSweep(B.Trace, B.Baselines, enumerateConfigs(Spec), Options);
  ASSERT_EQ(Runs.size(), 1u);
  EXPECT_GE(Runs[0].AnchoredPerMPL[1].Score + 0.02,
            Runs[0].PerMPL[1].Score);
}

TEST(IntegrationTest, GoldenStabilityJess) {
  // Guards against accidental nondeterminism anywhere in the pipeline:
  // same workload, seed, and config must reproduce identical scores.
  const BenchmarkData &B = smallBenchmarks()[0];
  DetectorConfig C;
  C.Window.CWSize = 500;
  C.Window.TWSize = 500;
  C.Window.TWPolicy = TWPolicyKind::Adaptive;
  C.Model = ModelKind::UnweightedSet;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  std::unique_ptr<PhaseDetector> D1 = makeDetector(C, B.Trace.numSites());
  std::unique_ptr<PhaseDetector> D2 = makeDetector(C, B.Trace.numSites());
  DetectorRun R1 = runDetector(*D1, B.Trace);
  DetectorRun R2 = runDetector(*D2, B.Trace);
  AccuracyScore S1 = scoreDetection(R1.States, B.Baselines[0].states());
  AccuracyScore S2 = scoreDetection(R2.States, B.Baselines[0].states());
  EXPECT_DOUBLE_EQ(S1.Score, S2.Score);
  EXPECT_EQ(R1.DetectedPhases.size(), R2.DetectedPhases.size());
}
