//===- tests/SyntheticTest.cpp - Synthetic generator + Manhattan tests --------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"
#include "core/SimilarityKernel.h"
#include "metrics/Scoring.h"
#include "support/Random.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

using namespace opd;

//===----------------------------------------------------------------------===//
// Synthetic trace generator
//===----------------------------------------------------------------------===//

TEST(SyntheticTest, LayoutMatchesSpec) {
  SyntheticSpec Spec;
  Spec.NumPhases = 5;
  Spec.PhaseLength = 1000;
  Spec.TransitionLength = 200;
  SyntheticTrace T = generateSynthetic(Spec);
  // [t][p][t][p][t][p][t][p][t][p][t]
  EXPECT_EQ(T.Trace.size(), 5 * 1000 + 6 * 200u);
  EXPECT_EQ(T.Truth.size(), T.Trace.size());
  std::vector<PhaseInterval> Phases = T.Truth.phases();
  ASSERT_EQ(Phases.size(), 5u);
  EXPECT_EQ(Phases[0], (PhaseInterval{200, 1200}));
  EXPECT_EQ(Phases[4].End, T.Trace.size() - 200);
  for (const PhaseInterval &P : Phases)
    EXPECT_EQ(P.length(), 1000u);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec Spec;
  Spec.Seed = 99;
  SyntheticTrace A = generateSynthetic(Spec);
  SyntheticTrace B = generateSynthetic(Spec);
  ASSERT_EQ(A.Trace.size(), B.Trace.size());
  for (uint64_t I = 0; I != A.Trace.size(); ++I)
    ASSERT_EQ(A.Trace[I], B.Trace[I]);
}

TEST(SyntheticTest, ZeroNoiseKeepsPhasesPure) {
  SyntheticSpec Spec;
  Spec.NumPhases = 3;
  Spec.NumBehaviors = 3;
  Spec.NoiseProbability = 0.0;
  Spec.VocabOverlap = 0.0;
  SyntheticTrace T = generateSynthetic(Spec);
  // Within any phase, at most VocabPerBehavior distinct sites appear.
  for (const PhaseInterval &P : T.Truth.phases()) {
    std::vector<bool> Seen(T.Trace.numSites(), false);
    unsigned Distinct = 0;
    for (uint64_t I = P.Begin; I != P.End; ++I)
      if (!Seen[T.Trace[I]]) {
        Seen[T.Trace[I]] = true;
        ++Distinct;
      }
    EXPECT_LE(Distinct, Spec.VocabPerBehavior);
  }
}

TEST(SyntheticTest, OverlapSharesSites) {
  SyntheticSpec Disjoint, Shared;
  Disjoint.VocabOverlap = 0.0;
  Shared.VocabOverlap = 0.5;
  // Half-shared vocabularies intern fewer distinct sites.
  EXPECT_GT(generateSynthetic(Disjoint).Trace.numSites(),
            generateSynthetic(Shared).Trace.numSites());
}

TEST(SyntheticTest, DetectorNailsCleanTrace) {
  SyntheticSpec Spec;
  Spec.NumPhases = 6;
  Spec.PhaseLength = 8000;
  Spec.TransitionLength = 2000;
  Spec.NoiseProbability = 0.05;
  SyntheticTrace T = generateSynthetic(Spec);

  DetectorConfig C;
  C.Window.CWSize = 800;
  C.Window.TWSize = 800;
  C.Window.TWPolicy = TWPolicyKind::Adaptive;
  C.Model = ModelKind::UnweightedSet;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  std::unique_ptr<PhaseDetector> D = makeDetector(C, T.Trace.numSites());
  DetectorRun Run = runDetector(*D, T.Trace);
  AccuracyScore S = scoreDetection(Run.States, T.Truth);
  EXPECT_GT(S.Score, 0.8);
  EXPECT_GT(S.Sensitivity, 0.7);
}

TEST(SyntheticTest, NoTransitionsStillValid) {
  SyntheticSpec Spec;
  Spec.NumPhases = 3;
  Spec.PhaseLength = 500;
  Spec.TransitionLength = 0;
  SyntheticTrace T = generateSynthetic(Spec);
  EXPECT_EQ(T.Trace.size(), 1500u);
  // Adjacent phases merge into runs but total in-phase coverage is full.
  EXPECT_EQ(T.Truth.numInPhase(), 1500u);
}

//===----------------------------------------------------------------------===//
// Manhattan kernel
//===----------------------------------------------------------------------===//

TEST(ManhattanKernelTest, IdenticalDistributionsAreOne) {
  ManhattanKernel K(3);
  for (SiteIndex S = 0; S != 3; ++S) {
    K.cwAdd(S);
    K.twAdd(S);
    K.twAdd(S); // scaled counts, same distribution
  }
  EXPECT_NEAR(K.similarity(), 1.0, 1e-12);
}

TEST(ManhattanKernelTest, DisjointWindowsAreZero) {
  ManhattanKernel K(4);
  K.cwAdd(0);
  K.cwAdd(1);
  K.twAdd(2);
  K.twAdd(3);
  EXPECT_NEAR(K.similarity(), 0.0, 1e-12);
}

TEST(ManhattanKernelTest, EmptyWindowIsZero) {
  ManhattanKernel K(2);
  K.cwAdd(0);
  EXPECT_DOUBLE_EQ(K.similarity(), 0.0);
}

TEST(ManhattanKernelTest, EquivalentToWeightedMinSum) {
  // For probability vectors, sum_s min(p_s, q_s) == 1 - L1(p, q)/2; the
  // two kernels are independent implementations of the same measure and
  // must agree on random window contents.
  Xoshiro256 Rng(321);
  const SiteIndex NumSites = 10;
  for (int Trial = 0; Trial < 50; ++Trial) {
    ManhattanKernel M(NumSites);
    WeightedSetKernel W(NumSites);
    unsigned N = 1 + static_cast<unsigned>(Rng.nextBelow(200));
    for (unsigned I = 0; I != N; ++I) {
      SiteIndex S = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
      M.cwAdd(S);
      W.cwAdd(S);
      S = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
      M.twAdd(S);
      W.twAdd(S);
    }
    ASSERT_NEAR(M.similarity(), W.similarity(), 1e-9);
  }
}

TEST(ManhattanKernelTest, WorksInsideADetector) {
  SyntheticSpec Spec;
  Spec.NumPhases = 4;
  Spec.PhaseLength = 5000;
  SyntheticTrace T = generateSynthetic(Spec);
  DetectorConfig C;
  C.Window.CWSize = 500;
  C.Window.TWSize = 500;
  C.Model = ModelKind::ManhattanBBV;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  std::unique_ptr<PhaseDetector> D = makeDetector(C, T.Trace.numSites());
  DetectorRun Run = runDetector(*D, T.Trace);
  EXPECT_EQ(Run.States.size(), T.Trace.size());
  EXPECT_GT(Run.States.numInPhase(), 0u);
  EXPECT_NE(D->describe().find("manhattan"), std::string::npos);
}

TEST(ManhattanKernelTest, DetectorOutputsMatchWeightedExactly) {
  // The two kernels compute the same mathematical measure with disjoint
  // implementations (incremental integer min-sum vs floating-point L1
  // recomputation). Identical detector configurations differing only in
  // the model must therefore produce identical state sequences — an
  // end-to-end cross-validation of the weighted kernel's incremental
  // bookkeeping through fills, flushes, anchors, and adaptive growth.
  SyntheticSpec Spec;
  Spec.NumPhases = 8;
  Spec.PhaseLength = 6000;
  Spec.TransitionLength = 1500;
  Spec.NoiseProbability = 0.15;
  Spec.Seed = 99;
  SyntheticTrace T = generateSynthetic(Spec);

  for (TWPolicyKind Policy :
       {TWPolicyKind::Constant, TWPolicyKind::Adaptive}) {
    DetectorConfig C;
    C.Window.CWSize = 400;
    C.Window.TWSize = 400;
    C.Window.TWPolicy = Policy;
    C.TheAnalyzer = AnalyzerKind::Threshold;
    C.AnalyzerParam = 0.7;

    C.Model = ModelKind::WeightedSet;
    std::unique_ptr<PhaseDetector> DW = makeDetector(C, T.Trace.numSites());
    C.Model = ModelKind::ManhattanBBV;
    std::unique_ptr<PhaseDetector> DM = makeDetector(C, T.Trace.numSites());

    DetectorRun RW = runDetector(*DW, T.Trace);
    DetectorRun RM = runDetector(*DM, T.Trace);
    ASSERT_EQ(RW.DetectedPhases.size(), RM.DetectedPhases.size())
        << twPolicyName(Policy);
    for (size_t I = 0; I != RW.DetectedPhases.size(); ++I)
      EXPECT_EQ(RW.DetectedPhases[I], RM.DetectedPhases[I])
          << twPolicyName(Policy) << " phase " << I;
    EXPECT_EQ(countAgreement(RW.States, RM.States), T.Trace.size())
        << twPolicyName(Policy);
  }
}
