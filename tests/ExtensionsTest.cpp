//===- tests/ExtensionsTest.cpp - Tests for the extension features ------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the features beyond the paper's core evaluation: detection
/// latency, confidence levels, the hysteresis analyzer, recurring-phase
/// identification, and phase attribution.
///
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"
#include "core/Analyzer.h"
#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"
#include "core/RecurringPhases.h"
#include "lang/Diagnostics.h"
#include "lang/ProgramInfo.h"
#include "lang/Sema.h"
#include "metrics/Latency.h"
#include "support/Random.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace opd;

//===----------------------------------------------------------------------===//
// Detection latency
//===----------------------------------------------------------------------===//

TEST(LatencyTest, ExactMatchHasZeroDelay) {
  LatencyStats L =
      computeLatency({{100, 200}}, {{100, 200}}, /*Total=*/300);
  ASSERT_EQ(L.StartDelay.count(), 1u);
  EXPECT_DOUBLE_EQ(L.StartDelay.mean(), 0.0);
  EXPECT_DOUBLE_EQ(L.EndDelay.mean(), 0.0);
  EXPECT_EQ(L.UnmatchedStarts, 0u);
}

TEST(LatencyTest, LateDetectionMeasured) {
  LatencyStats L =
      computeLatency({{150, 230}}, {{100, 200}}, /*Total=*/300);
  EXPECT_DOUBLE_EQ(L.StartDelay.mean(), 50.0);
  EXPECT_DOUBLE_EQ(L.EndDelay.mean(), 30.0);
}

TEST(LatencyTest, UnmatchedBoundariesCounted) {
  // Detector found nothing in the first baseline phase.
  LatencyStats L = computeLatency({{500, 650}}, {{100, 200}, {400, 600}},
                                  /*Total=*/1000);
  EXPECT_EQ(L.UnmatchedStarts, 1u);
  EXPECT_EQ(L.StartDelay.count(), 1u);
  EXPECT_DOUBLE_EQ(L.StartDelay.mean(), 100.0); // 500 - 400
}

TEST(LatencyTest, MultiplePhasesAveraged) {
  LatencyStats L = computeLatency({{110, 220}, {420, 640}},
                                  {{100, 200}, {400, 600}},
                                  /*Total=*/1000);
  ASSERT_EQ(L.StartDelay.count(), 2u);
  EXPECT_DOUBLE_EQ(L.StartDelay.mean(), 15.0); // (10 + 20) / 2
  EXPECT_DOUBLE_EQ(L.EndDelay.mean(), 30.0);   // (20 + 40) / 2
}

TEST(LatencyTest, WindowFillDelayShowsUpEndToEnd) {
  // One vocabulary shift: detector with CW=TW=100 flags the new phase
  // ~200 elements after it starts (window fill after the flush).
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = compileProgram(
      "program t; method main() {"
      "  loop a times 1500 { branch x0; branch x1; }"
      "  loop b times 1500 { branch y0; branch y1; }"
      "}",
      Diags);
  ASSERT_NE(Prog, nullptr);
  ExecutionResult Exec = runProgram(*Prog, {});
  std::vector<BaselineSolution> Oracles =
      computeBaselines(Exec.CallLoop, Exec.Branches.size(), {1000});

  DetectorConfig C;
  C.Window.CWSize = 100;
  C.Window.TWSize = 100;
  C.Model = ModelKind::UnweightedSet;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  std::unique_ptr<PhaseDetector> D =
      makeDetector(C, Exec.Branches.numSites());
  DetectorRun Run = runDetector(*D, Exec.Branches);
  LatencyStats L = computeLatency(Run.DetectedPhases,
                                  Oracles[0].phases(),
                                  Exec.Branches.size());
  ASSERT_GT(L.StartDelay.count(), 0u);
  // Delay bounded by roughly CW+TW plus slack; never negative.
  EXPECT_GE(L.StartDelay.min(), 0.0);
  EXPECT_LE(L.StartDelay.max(), 500.0);
}

//===----------------------------------------------------------------------===//
// Confidence
//===----------------------------------------------------------------------===//

TEST(ConfidenceTest, ThresholdMarginScalesConfidence) {
  ThresholdAnalyzer A(0.6);
  A.processValue(0.61);
  double Near = A.confidence();
  A.processValue(0.95);
  double Far = A.confidence();
  EXPECT_LT(Near, Far);
  EXPECT_DOUBLE_EQ(Far, 1.0); // saturates beyond the margin scale
  A.processValue(0.2);
  EXPECT_DOUBLE_EQ(A.confidence(), 1.0); // confidently in transition
}

TEST(ConfidenceTest, AverageOptimisticEntryHasZeroConfidence) {
  AverageAnalyzer A(0.05);
  A.processValue(0.9);
  EXPECT_DOUBLE_EQ(A.confidence(), 0.0);
  A.updateStats(0.9);
  A.processValue(0.9);
  EXPECT_GT(A.confidence(), 0.0);
}

TEST(ConfidenceTest, DetectorReportsZeroWhileFilling) {
  DetectorConfig C;
  C.Window.CWSize = 50;
  C.Window.TWSize = 50;
  std::unique_ptr<PhaseDetector> D = makeDetector(C, 2);
  SiteIndex S = 0;
  D->processBatch(&S, 1);
  EXPECT_DOUBLE_EQ(D->confidence(), 0.0);
  for (int I = 0; I < 200; ++I)
    D->processBatch(&S, 1);
  EXPECT_GT(D->confidence(), 0.0);
}

//===----------------------------------------------------------------------===//
// Hysteresis analyzer
//===----------------------------------------------------------------------===//

TEST(HysteresisTest, DeadBandSuppressesFlapping) {
  HysteresisAnalyzer A(0.7, 0.5);
  EXPECT_EQ(A.processValue(0.65), PhaseState::Transition); // below enter
  EXPECT_EQ(A.processValue(0.75), PhaseState::InPhase);    // enters
  EXPECT_EQ(A.processValue(0.65), PhaseState::InPhase);    // dead band
  EXPECT_EQ(A.processValue(0.55), PhaseState::InPhase);    // still >= exit
  EXPECT_EQ(A.processValue(0.45), PhaseState::Transition); // exits
  EXPECT_EQ(A.processValue(0.65), PhaseState::Transition); // needs 0.7
}

TEST(HysteresisTest, PlainThresholdWouldFlap) {
  // The same value stream through a single threshold flips four times;
  // hysteresis flips twice.
  std::vector<double> Values = {0.75, 0.65, 0.75, 0.65, 0.45};
  ThresholdAnalyzer T(0.7);
  HysteresisAnalyzer H(0.7, 0.5);
  unsigned TFlips = 0, HFlips = 0;
  PhaseState TPrev = PhaseState::Transition, HPrev = PhaseState::Transition;
  for (double V : Values) {
    PhaseState TS = T.processValue(V);
    PhaseState HS = H.processValue(V);
    TFlips += TS != TPrev;
    HFlips += HS != HPrev;
    TPrev = TS;
    HPrev = HS;
  }
  EXPECT_GT(TFlips, HFlips);
}

TEST(HysteresisTest, ResetReturnsToTransition) {
  HysteresisAnalyzer A(0.7, 0.5);
  A.processValue(0.9);
  A.reset();
  EXPECT_EQ(A.processValue(0.6), PhaseState::Transition);
}

TEST(HysteresisTest, FactoryBuildsIt) {
  std::unique_ptr<Analyzer> A = makeAnalyzer(AnalyzerKind::Hysteresis, 0.7);
  ASSERT_NE(A, nullptr);
  EXPECT_NE(A->describe().find("hysteresis"), std::string::npos);
  EXPECT_EQ(A->processValue(0.65), PhaseState::Transition);
  EXPECT_EQ(A->processValue(0.75), PhaseState::InPhase);
  EXPECT_EQ(A->processValue(0.6), PhaseState::InPhase); // exit = 0.55
}

//===----------------------------------------------------------------------===//
// Recurring phases
//===----------------------------------------------------------------------===//

TEST(PhaseSignatureTest, IdenticalDistributionsScoreOne) {
  PhaseSignature A(4), B(4);
  for (SiteIndex S = 0; S != 4; ++S)
    for (unsigned I = 0; I <= S; ++I) {
      A.addElement(S);
      B.addElement(S);
      B.addElement(S); // double counts: same *relative* weights
    }
  EXPECT_NEAR(PhaseSignature::similarity(A, B), 1.0, 1e-12);
}

TEST(PhaseSignatureTest, DisjointDistributionsScoreZero) {
  PhaseSignature A(4), B(4);
  A.addElement(0);
  A.addElement(1);
  B.addElement(2);
  B.addElement(3);
  EXPECT_DOUBLE_EQ(PhaseSignature::similarity(A, B), 0.0);
}

TEST(PhaseSignatureTest, EmptySignatureScoresZero) {
  PhaseSignature A(2), B(2);
  A.addElement(0);
  EXPECT_DOUBLE_EQ(PhaseSignature::similarity(A, B), 0.0);
}

TEST(PhaseLibraryTest, ClassifiesNewAndRecurring) {
  PhaseLibrary Lib(0.8);
  PhaseSignature A(4);
  for (int I = 0; I < 100; ++I)
    A.addElement(0);
  PhaseLibrary::Classification C1 = Lib.classify(A);
  EXPECT_FALSE(C1.Recurrence);
  EXPECT_EQ(C1.Id, 0u);

  PhaseSignature B(4);
  for (int I = 0; I < 50; ++I)
    B.addElement(1);
  PhaseLibrary::Classification C2 = Lib.classify(B);
  EXPECT_FALSE(C2.Recurrence);
  EXPECT_EQ(C2.Id, 1u);

  PhaseSignature A2(4);
  for (int I = 0; I < 90; ++I)
    A2.addElement(0);
  PhaseLibrary::Classification C3 = Lib.classify(A2);
  EXPECT_TRUE(C3.Recurrence);
  EXPECT_EQ(C3.Id, 0u);
  EXPECT_GE(C3.Similarity, 0.8);
  EXPECT_EQ(Lib.size(), 2u);
}

TEST(RecurringPhaseTrackerTest, ABABPattern) {
  RecurringPhaseTracker Tracker(2, 0.8);
  auto feedPhase = [&](SiteIndex Site, size_t Len) {
    for (size_t I = 0; I != Len; ++I)
      Tracker.observe(&Site, 1, PhaseState::InPhase);
    SiteIndex Sep = Site;
    Tracker.observe(&Sep, 1, PhaseState::Transition);
  };
  feedPhase(0, 100); // A
  feedPhase(1, 100); // B
  feedPhase(0, 100); // A again
  feedPhase(1, 100); // B again
  Tracker.finish();
  const std::vector<RecurringPhaseTracker::CompletedPhase> &Phases =
      Tracker.completedPhases();
  ASSERT_EQ(Phases.size(), 4u);
  EXPECT_EQ(Phases[0].Id, 0u);
  EXPECT_FALSE(Phases[0].Recurrence);
  EXPECT_EQ(Phases[1].Id, 1u);
  EXPECT_FALSE(Phases[1].Recurrence);
  EXPECT_EQ(Phases[2].Id, 0u);
  EXPECT_TRUE(Phases[2].Recurrence);
  EXPECT_EQ(Phases[3].Id, 1u);
  EXPECT_TRUE(Phases[3].Recurrence);
  EXPECT_EQ(Tracker.numDistinctPhases(), 2u);
}

TEST(RecurringPhaseTrackerTest, IntervalsMatchObservedStates) {
  RecurringPhaseTracker Tracker(2, 0.8);
  SiteIndex S0 = 0;
  for (int I = 0; I < 10; ++I)
    Tracker.observe(&S0, 1, PhaseState::Transition);
  for (int I = 0; I < 30; ++I)
    Tracker.observe(&S0, 1, PhaseState::InPhase);
  for (int I = 0; I < 5; ++I)
    Tracker.observe(&S0, 1, PhaseState::Transition);
  Tracker.finish();
  ASSERT_EQ(Tracker.completedPhases().size(), 1u);
  EXPECT_EQ(Tracker.completedPhases()[0].Interval,
            (PhaseInterval{10, 40}));
}

TEST(RecurringPhaseTrackerTest, OpenPhaseClosedByFinish) {
  RecurringPhaseTracker Tracker(1, 0.8);
  SiteIndex S0 = 0;
  for (int I = 0; I < 20; ++I)
    Tracker.observe(&S0, 1, PhaseState::InPhase);
  EXPECT_TRUE(Tracker.completedPhases().empty());
  Tracker.finish();
  ASSERT_EQ(Tracker.completedPhases().size(), 1u);
  EXPECT_EQ(Tracker.completedPhases()[0].Interval, (PhaseInterval{0, 20}));
}

TEST(RecurringPhaseTrackerTest, EndToEndWithDetector) {
  // compress alternates scan-heavy and emit-heavy behavior over shared
  // sites: the tracker should find a small number of distinct phases and
  // mark later occurrences as recurrences.
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = compileProgram(
      "program t; method main() {"
      "  loop reps times 6 {"
      "    loop a times 900 { branch x0; branch x1; }"
      "    branch s0; branch s1; branch s2;"
      "    loop b times 900 { branch y0; branch y1; branch y2; }"
      "    branch s3; branch s4; branch s5;"
      "  }"
      "}",
      Diags);
  ASSERT_NE(Prog, nullptr);
  ExecutionResult Exec = runProgram(*Prog, {});

  DetectorConfig C;
  C.Window.CWSize = 200;
  C.Window.TWSize = 200;
  C.Window.TWPolicy = TWPolicyKind::Adaptive;
  std::unique_ptr<PhaseDetector> D =
      makeDetector(C, Exec.Branches.numSites());
  RecurringPhaseTracker Tracker(Exec.Branches.numSites(), 0.7);
  const std::vector<SiteIndex> &Elements = Exec.Branches.elements();
  for (size_t I = 0; I != Elements.size(); ++I) {
    PhaseState S = D->processBatch(&Elements[I], 1);
    Tracker.observe(&Elements[I], 1, S);
  }
  Tracker.finish();
  // 12 loop phases of only 2 behavior classes.
  EXPECT_GE(Tracker.completedPhases().size(), 8u);
  EXPECT_LE(Tracker.numDistinctPhases(), 4u);
  unsigned Recurrences = 0;
  for (const RecurringPhaseTracker::CompletedPhase &P :
       Tracker.completedPhases())
    Recurrences += P.Recurrence ? 1 : 0;
  EXPECT_GE(Recurrences, 6u);
}

//===----------------------------------------------------------------------===//
// Phase attribution
//===----------------------------------------------------------------------===//

TEST(ProgramInfoTest, NamesMethodsAndLoops) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = compileProgram(
      "program t;"
      "method work() { loop k times 5 { branch a; } loop times 3 { branch b; } }"
      "method main() { loop i times 2 { call work(); } }",
      Diags);
  ASSERT_NE(Prog, nullptr);
  ProgramInfo Info = ProgramInfo::build(*Prog);
  EXPECT_EQ(Info.numMethods(), 2u);
  EXPECT_EQ(Info.methodName(0), "work");
  EXPECT_EQ(Info.methodName(1), "main");
  EXPECT_EQ(Info.numLoops(), 3u);
  EXPECT_EQ(Info.loopName(0), "work.k");
  EXPECT_NE(Info.loopName(1).find("work.loop@"), std::string::npos);
  EXPECT_EQ(Info.loopName(2), "main.i");
  // Out-of-range fallbacks.
  EXPECT_EQ(Info.methodName(9), "method#9");
  EXPECT_EQ(Info.loopName(9), "loop#9");
}

TEST(AttributionTest, PhasesCarryTheirConstruct) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = compileProgram(
      "program t;"
      "method f(d) { branch a; when (d > 0) { call f(d - 1); } }"
      "method main() {"
      "  loop big times 300 { branch x; }"
      "  branch s0; branch s1;"
      "  call f(200);"
      "}",
      Diags);
  ASSERT_NE(Prog, nullptr);
  ExecutionResult Exec = runProgram(*Prog, {});
  std::vector<BaselineSolution> Sols =
      computeBaselines(Exec.CallLoop, Exec.Branches.size(), {100});
  const std::vector<AttributedPhase> &Phases =
      Sols[0].attributedPhases();
  ASSERT_EQ(Phases.size(), 2u);
  ProgramInfo Info = ProgramInfo::build(*Prog);
  // First phase: the 'big' loop.
  EXPECT_EQ(Phases[0].ConstructKind, RepetitionInstance::Kind::Loop);
  EXPECT_EQ(Info.loopName(Phases[0].StaticId), "main.big");
  // Second phase: the recursive execution of f.
  EXPECT_EQ(Phases[1].ConstructKind, RepetitionInstance::Kind::Method);
  EXPECT_EQ(Info.methodName(Phases[1].StaticId), "f");
}

TEST(AttributionTest, ChainLengthRecorded) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = compileProgram(
      "program t;"
      "method q() { loop w times 20 { branch a; } }"
      "method main() { loop r times 8 { call q(); branch s; } }",
      Diags);
  ASSERT_NE(Prog, nullptr);
  ExecutionResult Exec = runProgram(*Prog, {});
  // Adjacent q() invocations 1 element apart chain into one CRI.
  std::vector<BaselineSolution> Sols =
      computeBaselines(Exec.CallLoop, Exec.Branches.size(), {100});
  ASSERT_EQ(Sols[0].numPhases(), 1u);
  const AttributedPhase &P = Sols[0].attributedPhases()[0];
  EXPECT_EQ(P.ConstructKind, RepetitionInstance::Kind::Method);
  EXPECT_EQ(P.NumInstances, 8u);
}
