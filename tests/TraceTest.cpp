//===- tests/TraceTest.cpp - Unit tests for src/trace -------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "trace/BranchTrace.h"
#include "trace/CallLoopTrace.h"
#include "trace/ProfileElement.h"
#include "trace/StateSequence.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>

using namespace opd;

namespace {

/// Temp-file path helper; removes the file on destruction.
class TempFile {
  std::string Path;

public:
  explicit TempFile(const std::string &Suffix) {
    Path = testing::TempDir() + "opd_trace_test_" +
           std::to_string(::getpid()) + "_" + Suffix;
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }
};

} // namespace

//===----------------------------------------------------------------------===//
// ProfileElement
//===----------------------------------------------------------------------===//

TEST(ProfileElementTest, PacksAndUnpacks) {
  ProfileElement E(1234, 567, true);
  EXPECT_EQ(E.methodId(), 1234u);
  EXPECT_EQ(E.bytecodeOffset(), 567u);
  EXPECT_TRUE(E.taken());
}

TEST(ProfileElementTest, ExtremeFieldValues) {
  ProfileElement E(ProfileElement::MaxMethodId, ProfileElement::MaxOffset,
                   false);
  EXPECT_EQ(E.methodId(), ProfileElement::MaxMethodId);
  EXPECT_EQ(E.bytecodeOffset(), ProfileElement::MaxOffset);
  EXPECT_FALSE(E.taken());
}

TEST(ProfileElementTest, TakenBitDistinguishesElements) {
  ProfileElement Taken(5, 10, true), NotTaken(5, 10, false);
  EXPECT_NE(Taken, NotTaken);
  EXPECT_NE(Taken.raw(), NotTaken.raw());
}

TEST(ProfileElementTest, RawRoundTrip) {
  ProfileElement E(42, 99, true);
  EXPECT_EQ(ProfileElement::fromRaw(E.raw()), E);
}

//===----------------------------------------------------------------------===//
// SiteTable / BranchTrace
//===----------------------------------------------------------------------===//

TEST(SiteTableTest, InternIsIdempotent) {
  SiteTable T;
  ProfileElement A(1, 2, true), B(3, 4, false);
  SiteIndex IA = T.intern(A);
  SiteIndex IB = T.intern(B);
  EXPECT_NE(IA, IB);
  EXPECT_EQ(T.intern(A), IA);
  EXPECT_EQ(T.numSites(), 2u);
  EXPECT_EQ(T.element(IA), A);
  EXPECT_EQ(T.element(IB), B);
}

TEST(SiteTableTest, LookupMissReturnsNumSites) {
  SiteTable T;
  T.intern(ProfileElement(1, 1, true));
  EXPECT_EQ(T.lookup(ProfileElement(9, 9, false)), T.numSites());
}

TEST(BranchTraceTest, AppendAndIndex) {
  BranchTrace Trace;
  Trace.append(ProfileElement(1, 0, true));
  Trace.append(ProfileElement(1, 1, true));
  Trace.append(ProfileElement(1, 0, true));
  EXPECT_EQ(Trace.size(), 3u);
  EXPECT_EQ(Trace.numSites(), 2u);
  EXPECT_EQ(Trace[0], Trace[2]);
  EXPECT_NE(Trace[0], Trace[1]);
}

TEST(BranchTraceTest, DenseIndicesAreContiguous) {
  BranchTrace Trace;
  for (unsigned I = 0; I != 10; ++I)
    Trace.append(ProfileElement(I, I, false));
  for (SiteIndex S = 0; S != Trace.numSites(); ++S)
    EXPECT_EQ(Trace.sites().lookup(Trace.sites().element(S)), S);
}

//===----------------------------------------------------------------------===//
// CallLoopTrace
//===----------------------------------------------------------------------===//

TEST(CallLoopTraceTest, AppendsInOrder) {
  CallLoopTrace T;
  T.append(CallLoopEventKind::MethodEnter, 0, 0);
  T.append(CallLoopEventKind::LoopEnter, 1, 5);
  T.append(CallLoopEventKind::LoopExit, 1, 50);
  T.append(CallLoopEventKind::MethodExit, 0, 50);
  EXPECT_EQ(T.size(), 4u);
  EXPECT_EQ(T[1].Kind, CallLoopEventKind::LoopEnter);
  EXPECT_EQ(T[1].Id, 1u);
  EXPECT_EQ(T[2].Offset, 50u);
}

TEST(CallLoopTraceTest, EventKindPredicates) {
  EXPECT_TRUE(isEnterEvent(CallLoopEventKind::LoopEnter));
  EXPECT_TRUE(isEnterEvent(CallLoopEventKind::MethodEnter));
  EXPECT_FALSE(isEnterEvent(CallLoopEventKind::LoopExit));
  EXPECT_TRUE(isLoopEvent(CallLoopEventKind::LoopExit));
  EXPECT_FALSE(isLoopEvent(CallLoopEventKind::MethodEnter));
}

//===----------------------------------------------------------------------===//
// StateSequence
//===----------------------------------------------------------------------===//

TEST(StateSequenceTest, MergesAdjacentRuns) {
  StateSequence S;
  S.append(PhaseState::Transition, 5);
  S.append(PhaseState::Transition, 3);
  S.append(PhaseState::InPhase, 2);
  EXPECT_EQ(S.size(), 10u);
  EXPECT_EQ(S.runs().size(), 2u);
  EXPECT_EQ(S.runs()[0].Length, 8u);
}

TEST(StateSequenceTest, AtBinarySearch) {
  StateSequence S;
  S.append(PhaseState::Transition, 4);
  S.append(PhaseState::InPhase, 6);
  S.append(PhaseState::Transition, 2);
  EXPECT_EQ(S.at(0), PhaseState::Transition);
  EXPECT_EQ(S.at(3), PhaseState::Transition);
  EXPECT_EQ(S.at(4), PhaseState::InPhase);
  EXPECT_EQ(S.at(9), PhaseState::InPhase);
  EXPECT_EQ(S.at(10), PhaseState::Transition);
  EXPECT_EQ(S.at(11), PhaseState::Transition);
}

TEST(StateSequenceTest, PhasesExtraction) {
  StateSequence S;
  S.append(PhaseState::InPhase, 3);
  S.append(PhaseState::Transition, 2);
  S.append(PhaseState::InPhase, 5);
  std::vector<PhaseInterval> P = S.phases();
  ASSERT_EQ(P.size(), 2u);
  EXPECT_EQ(P[0], (PhaseInterval{0, 3}));
  EXPECT_EQ(P[1], (PhaseInterval{5, 10}));
  EXPECT_EQ(S.numInPhase(), 8u);
}

TEST(StateSequenceTest, FromPhasesRoundTrip) {
  std::vector<PhaseInterval> Phases = {{2, 5}, {9, 12}, {12, 13}};
  // Adjacent intervals merge into one run but preserve coverage.
  StateSequence S = StateSequence::fromPhases(Phases, 20);
  EXPECT_EQ(S.size(), 20u);
  EXPECT_EQ(S.numInPhase(), 3u + 3u + 1u);
  EXPECT_EQ(S.at(2), PhaseState::InPhase);
  EXPECT_EQ(S.at(5), PhaseState::Transition);
  EXPECT_EQ(S.at(12), PhaseState::InPhase);
  EXPECT_EQ(S.at(13), PhaseState::Transition);
}

TEST(StateSequenceTest, CountAgreementIdentical) {
  StateSequence A;
  A.append(PhaseState::Transition, 7);
  A.append(PhaseState::InPhase, 3);
  EXPECT_EQ(countAgreement(A, A), 10u);
}

TEST(StateSequenceTest, CountAgreementMixed) {
  StateSequence A, B;
  A.append(PhaseState::Transition, 5);
  A.append(PhaseState::InPhase, 5);
  B.append(PhaseState::Transition, 3);
  B.append(PhaseState::InPhase, 7);
  // Disagreement exactly on [3, 5).
  EXPECT_EQ(countAgreement(A, B), 8u);
}

TEST(StateSequenceTest, CountAgreementRandomizedAgainstBruteForce) {
  Xoshiro256 Rng(555);
  for (int Trial = 0; Trial < 20; ++Trial) {
    StateSequence A, B;
    std::vector<PhaseState> VA, VB;
    uint64_t Len = 100 + Rng.nextBelow(200);
    for (uint64_t I = 0; I != Len; ++I) {
      PhaseState SA = Rng.nextBool(0.5) ? PhaseState::InPhase
                                        : PhaseState::Transition;
      PhaseState SB = Rng.nextBool(0.5) ? PhaseState::InPhase
                                        : PhaseState::Transition;
      A.append(SA);
      B.append(SB);
      VA.push_back(SA);
      VB.push_back(SB);
    }
    uint64_t Expected = 0;
    for (uint64_t I = 0; I != Len; ++I)
      Expected += VA[I] == VB[I];
    EXPECT_EQ(countAgreement(A, B), Expected);
  }
}

//===----------------------------------------------------------------------===//
// TraceIO
//===----------------------------------------------------------------------===//

namespace {

BranchTrace makeRandomBranchTrace(uint64_t Seed, uint64_t Len) {
  Xoshiro256 Rng(Seed);
  BranchTrace Trace;
  for (uint64_t I = 0; I != Len; ++I)
    Trace.append(ProfileElement(static_cast<uint32_t>(Rng.nextBelow(50)),
                                static_cast<uint32_t>(Rng.nextBelow(100)),
                                Rng.nextBool(0.5)));
  return Trace;
}

void expectTracesEqual(const BranchTrace &A, const BranchTrace &B) {
  ASSERT_EQ(A.size(), B.size());
  for (uint64_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(A.sites().element(A[I]), B.sites().element(B[I]));
}

} // namespace

TEST(TraceIOTest, BranchBinaryRoundTrip) {
  TempFile F("branch.bin");
  BranchTrace Original = makeRandomBranchTrace(11, 1000);
  ASSERT_TRUE(writeBranchTraceBinary(Original, F.path()));
  BranchTrace Loaded;
  ASSERT_TRUE(readBranchTraceBinary(F.path(), Loaded));
  expectTracesEqual(Original, Loaded);
}

TEST(TraceIOTest, BranchTextRoundTrip) {
  TempFile F("branch.txt");
  BranchTrace Original = makeRandomBranchTrace(22, 500);
  ASSERT_TRUE(writeBranchTraceText(Original, F.path()));
  BranchTrace Loaded;
  ASSERT_TRUE(readBranchTraceText(F.path(), Loaded));
  expectTracesEqual(Original, Loaded);
}

TEST(TraceIOTest, CallLoopBinaryRoundTrip) {
  TempFile F("cl.bin");
  CallLoopTrace Original;
  Original.append(CallLoopEventKind::MethodEnter, 0, 0);
  Original.append(CallLoopEventKind::LoopEnter, 7, 3);
  Original.append(CallLoopEventKind::LoopExit, 7, 120);
  Original.append(CallLoopEventKind::MethodExit, 0, 125);
  ASSERT_TRUE(writeCallLoopTraceBinary(Original, F.path()));
  CallLoopTrace Loaded;
  ASSERT_TRUE(readCallLoopTraceBinary(F.path(), Loaded));
  ASSERT_EQ(Loaded.size(), Original.size());
  for (size_t I = 0; I != Original.size(); ++I) {
    EXPECT_EQ(Loaded[I].Kind, Original[I].Kind);
    EXPECT_EQ(Loaded[I].Id, Original[I].Id);
    EXPECT_EQ(Loaded[I].Offset, Original[I].Offset);
  }
}

TEST(TraceIOTest, CallLoopTextRoundTrip) {
  TempFile F("cl.txt");
  CallLoopTrace Original;
  Original.append(CallLoopEventKind::MethodEnter, 3, 0);
  Original.append(CallLoopEventKind::MethodExit, 3, 99);
  ASSERT_TRUE(writeCallLoopTraceText(Original, F.path()));
  CallLoopTrace Loaded;
  ASSERT_TRUE(readCallLoopTraceText(F.path(), Loaded));
  ASSERT_EQ(Loaded.size(), 2u);
  EXPECT_EQ(Loaded[0].Kind, CallLoopEventKind::MethodEnter);
  EXPECT_EQ(Loaded[1].Offset, 99u);
}

TEST(TraceIOTest, MissingFileFails) {
  BranchTrace T;
  IOStatus S = readBranchTraceBinary("/nonexistent/path/trace.bin", T);
  EXPECT_FALSE(S);
  EXPECT_NE(S.Message.find("cannot open"), std::string::npos);
}

TEST(TraceIOTest, BadMagicFails) {
  TempFile F("bad.bin");
  std::FILE *Raw = std::fopen(F.path().c_str(), "wb");
  ASSERT_NE(Raw, nullptr);
  std::fputs("NOT A TRACE", Raw);
  std::fclose(Raw);
  BranchTrace T;
  IOStatus S = readBranchTraceBinary(F.path(), T);
  EXPECT_FALSE(S);
  EXPECT_NE(S.Message.find("bad magic"), std::string::npos);
}

TEST(TraceIOTest, MalformedTextLineFails) {
  TempFile F("bad.txt");
  std::FILE *Raw = std::fopen(F.path().c_str(), "w");
  ASSERT_NE(Raw, nullptr);
  std::fputs("1 2 1\nnot numbers\n", Raw);
  std::fclose(Raw);
  BranchTrace T;
  IOStatus S = readBranchTraceText(F.path(), T);
  EXPECT_FALSE(S);
  EXPECT_NE(S.Message.find("line 2"), std::string::npos);
}

TEST(TraceIOTest, TextCommentsSkipped) {
  TempFile F("comments.txt");
  std::FILE *Raw = std::fopen(F.path().c_str(), "w");
  ASSERT_NE(Raw, nullptr);
  std::fputs("# header\n5 6 1\n\n# more\n7 8 0\n", Raw);
  std::fclose(Raw);
  BranchTrace T;
  ASSERT_TRUE(readBranchTraceText(F.path(), T));
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T.sites().element(T[0]).methodId(), 5u);
  EXPECT_FALSE(T.sites().element(T[1]).taken());
}
