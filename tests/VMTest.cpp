//===- tests/VMTest.cpp - Unit tests for src/vm --------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/Diagnostics.h"
#include "lang/Sema.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

ExecutionResult run(const std::string &Source, uint64_t Seed = 1,
                    uint64_t MaxBranches = UINT64_MAX,
                    uint32_t MaxDepth = 4096) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.renderAll();
  InterpreterOptions Options;
  Options.Seed = Seed;
  Options.MaxBranches = MaxBranches;
  Options.MaxCallDepth = MaxDepth;
  return runProgram(*P, Options);
}

} // namespace

TEST(InterpreterTest, EmitsOneElementPerBranch) {
  ExecutionResult R = run("program t; method main() { branch a; branch b; }");
  EXPECT_EQ(R.Branches.size(), 2u);
  EXPECT_EQ(R.Stats.DynamicBranches, 2u);
  EXPECT_EQ(R.Stats.MethodInvocations, 1u); // main itself
  EXPECT_EQ(R.Stats.LoopExecutions, 0u);
  EXPECT_EQ(R.Stats.RecursionRoots, 0u);
}

TEST(InterpreterTest, LoopRepeatsBody) {
  ExecutionResult R =
      run("program t; method main() { loop times 5 { branch a; } }");
  EXPECT_EQ(R.Branches.size(), 5u);
  EXPECT_EQ(R.Stats.LoopExecutions, 1u); // one execution = all iterations
}

TEST(InterpreterTest, BranchSitesAreDistinctPerStatement) {
  ExecutionResult R =
      run("program t; method main() { branch a; branch b; branch a2; }");
  EXPECT_EQ(R.Branches.numSites(), 3u);
}

TEST(InterpreterTest, SameStatementSameSite) {
  ExecutionResult R =
      run("program t; method main() { loop times 10 { branch a; } }");
  EXPECT_EQ(R.Branches.numSites(), 1u);
}

TEST(InterpreterTest, FlipBranchYieldsTwoSites) {
  // A flipping branch contributes both the taken and not-taken elements.
  ExecutionResult R = run(
      "program t; method main() { loop times 200 { branch a flip 0.5; } }");
  EXPECT_EQ(R.Branches.numSites(), 2u);
}

TEST(InterpreterTest, DeterministicAcrossRuns) {
  const char *Source =
      "program t; method main() {"
      "  loop times 100 { branch a flip 0.5; if 0.3 { branch b; } }"
      "}";
  ExecutionResult A = run(Source, 42), B = run(Source, 42);
  ASSERT_EQ(A.Branches.size(), B.Branches.size());
  for (uint64_t I = 0; I != A.Branches.size(); ++I)
    EXPECT_EQ(A.Branches[I], B.Branches[I]);
}

TEST(InterpreterTest, SeedChangesNoise) {
  const char *Source =
      "program t; method main() {"
      "  loop times 100 { branch a flip 0.5; }"
      "}";
  ExecutionResult A = run(Source, 1), B = run(Source, 2);
  ASSERT_EQ(A.Branches.size(), B.Branches.size());
  bool AnyDifferent = false;
  for (uint64_t I = 0; I != A.Branches.size(); ++I)
    AnyDifferent |= A.Branches[I] != B.Branches[I];
  EXPECT_TRUE(AnyDifferent);
}

TEST(InterpreterTest, WhenBranchTakenBitReflectsCondition) {
  ExecutionResult R = run(
      "program t; method main() {"
      "  when (1 < 2) { branch a; }"
      "  when (2 < 1) { branch b; } else { branch c; }"
      "}");
  // Elements: when#1 (taken), a, when#2 (not taken), c.
  ASSERT_EQ(R.Branches.size(), 4u);
  EXPECT_TRUE(R.Branches.sites().element(R.Branches[0]).taken());
  EXPECT_FALSE(R.Branches.sites().element(R.Branches[2]).taken());
}

TEST(InterpreterTest, LoopVariableCountsIterations) {
  // Sum pattern: when (i % 2 == 0) takes the then-branch 3 times out of 5.
  ExecutionResult R = run(
      "program t; method main() {"
      "  loop i times 5 { when (i % 2 == 0) { branch even; } "
      "else { branch odd; } }"
      "}");
  // Each iteration: when-element + one arm element = 10 elements.
  ASSERT_EQ(R.Branches.size(), 10u);
  unsigned EvenCount = 0;
  for (uint64_t I = 0; I != R.Branches.size(); ++I) {
    ProfileElement E = R.Branches.sites().element(R.Branches[I]);
    // The 'even' arm branch has a distinct site; count taken when-elements
    // instead (offset of 'when' is 0 within main).
    if (E.bytecodeOffset() == 0 && E.taken())
      ++EvenCount;
  }
  EXPECT_EQ(EvenCount, 3u); // i = 0, 2, 4
}

TEST(InterpreterTest, ParamArithmetic) {
  ExecutionResult R = run(
      "program t;"
      "method f(n) { loop times n * 2 + 1 { branch a; } }"
      "method main() { call f(3); }");
  EXPECT_EQ(R.Branches.size(), 7u);
}

TEST(InterpreterTest, NegativeLoopCountRunsZeroTimes) {
  ExecutionResult R = run(
      "program t;"
      "method f(n) { loop times n - 10 { branch a; } }"
      "method main() { call f(3); branch done; }");
  EXPECT_EQ(R.Branches.size(), 1u);
}

TEST(InterpreterTest, DivisionByZeroIsZero) {
  ExecutionResult R = run(
      "program t;"
      "method f(n) { loop times 4 / n + 2 { branch a; } }"
      "method main() { call f(0); }");
  EXPECT_EQ(R.Branches.size(), 2u);
  EXPECT_EQ(R.Stats.DivByZero, 1u);
}

TEST(InterpreterTest, CallLoopEventsProperlyNested) {
  ExecutionResult R = run(
      "program t;"
      "method g() { loop times 2 { branch a; } }"
      "method main() { loop times 3 { call g(); } }");
  // Verify enter/exit nesting with a stack.
  std::vector<std::pair<CallLoopEventKind, uint32_t>> Stack;
  for (const CallLoopEvent &E : R.CallLoop.events()) {
    switch (E.Kind) {
    case CallLoopEventKind::LoopEnter:
      Stack.push_back({CallLoopEventKind::LoopExit, E.Id});
      break;
    case CallLoopEventKind::MethodEnter:
      Stack.push_back({CallLoopEventKind::MethodExit, E.Id});
      break;
    case CallLoopEventKind::LoopExit:
    case CallLoopEventKind::MethodExit:
      ASSERT_FALSE(Stack.empty());
      EXPECT_EQ(Stack.back().first, E.Kind);
      EXPECT_EQ(Stack.back().second, E.Id);
      Stack.pop_back();
      break;
    }
  }
  EXPECT_TRUE(Stack.empty());
}

TEST(InterpreterTest, EventOffsetsMatchBranchCounts) {
  ExecutionResult R = run(
      "program t;"
      "method main() { branch a; loop times 2 { branch b; } branch c; }");
  // main enter at 0; loop enter after 1 branch; loop exit after 3; main
  // exit after 4.
  ASSERT_EQ(R.CallLoop.size(), 4u);
  EXPECT_EQ(R.CallLoop[0].Offset, 0u);
  EXPECT_EQ(R.CallLoop[1].Offset, 1u);
  EXPECT_EQ(R.CallLoop[2].Offset, 3u);
  EXPECT_EQ(R.CallLoop[3].Offset, 4u);
}

TEST(InterpreterTest, CountsMethodInvocations) {
  ExecutionResult R = run(
      "program t;"
      "method g() { branch a; }"
      "method main() { loop times 4 { call g(); } }");
  EXPECT_EQ(R.Stats.MethodInvocations, 5u); // main + 4x g
}

TEST(InterpreterTest, DirectRecursionRootsCountedOncePerRoot) {
  ExecutionResult R = run(
      "program t;"
      "method f(d) { branch a; when (d > 0) { call f(d - 1); } }"
      "method main() { loop times 3 { call f(4); } }");
  // Each top-level f(4) is one recursion root (inner calls are not roots).
  EXPECT_EQ(R.Stats.RecursionRoots, 3u);
  EXPECT_EQ(R.Stats.MethodInvocations, 1u + 3u * 5u);
}

TEST(InterpreterTest, MutualRecursionMarksBottomInstance) {
  ExecutionResult R = run(
      "program t;"
      "method f(d) { branch a; when (d > 0) { call g(d - 1); } }"
      "method g(d) { branch b; when (d > 0) { call f(d - 1); } }"
      "method main() { call f(4); }");
  // f is re-invoked while the first f is live => 1 root for f; likewise g.
  EXPECT_EQ(R.Stats.RecursionRoots, 2u);
}

TEST(InterpreterTest, NonRecursiveCallsAreNotRoots) {
  ExecutionResult R = run(
      "program t;"
      "method g() { branch a; }"
      "method main() { call g(); call g(); }");
  EXPECT_EQ(R.Stats.RecursionRoots, 0u);
}

TEST(InterpreterTest, FuelLimitStopsGracefully) {
  ExecutionResult R = run(
      "program t; method main() { loop times 1000000 { branch a; } }",
      /*Seed=*/1, /*MaxBranches=*/5000);
  EXPECT_TRUE(R.Stats.HaltedByFuel);
  EXPECT_EQ(R.Branches.size(), 5000u);
  // Exits still emitted: trace remains balanced.
  ASSERT_GE(R.CallLoop.size(), 2u);
  EXPECT_EQ(R.CallLoop.events().back().Kind, CallLoopEventKind::MethodExit);
}

TEST(InterpreterTest, DepthLimitStopsGracefully) {
  ExecutionResult R = run(
      "program t;"
      "method f() { branch a; call f(); }"
      "method main() { call f(); }",
      /*Seed=*/1, /*MaxBranches=*/UINT64_MAX, /*MaxDepth=*/50);
  EXPECT_TRUE(R.Stats.HaltedByDepth);
  EXPECT_LE(R.Stats.MaxCallDepth, 50u);
  EXPECT_EQ(R.CallLoop.events().back().Kind, CallLoopEventKind::MethodExit);
}

TEST(InterpreterTest, PickSelectsExactlyOneArm) {
  ExecutionResult R = run(
      "program t; method main() {"
      "  loop times 100 { pick { weight 1 { branch a; } "
      "weight 1 { branch b; } } }"
      "}");
  EXPECT_EQ(R.Branches.size(), 100u);
  EXPECT_EQ(R.Branches.numSites(), 2u);
}

TEST(InterpreterTest, PickWeightsRespected) {
  ExecutionResult R = run(
      "program t; method main() {"
      "  loop times 10000 { pick { weight 9 { branch a; } "
      "weight 1 { branch b; } } }"
      "}");
  uint64_t CountA = 0;
  SiteIndex SiteA = R.Branches[0]; // whichever site; count exact below
  (void)SiteA;
  // Count elements whose bytecode offset matches 'branch a' (first arm).
  for (uint64_t I = 0; I != R.Branches.size(); ++I) {
    ProfileElement E = R.Branches.sites().element(R.Branches[I]);
    if (E.bytecodeOffset() == 0)
      ++CountA;
  }
  EXPECT_NEAR(static_cast<double>(CountA), 9000.0, 300.0);
}

TEST(InterpreterTest, IfProbabilityRespected) {
  ExecutionResult R = run(
      "program t; method main() {"
      "  loop times 10000 { if 0.2 { branch a; } else { branch b; } }"
      "}");
  uint64_t TakenCount = 0;
  for (uint64_t I = 0; I != R.Branches.size(); ++I) {
    ProfileElement E = R.Branches.sites().element(R.Branches[I]);
    if (E.bytecodeOffset() == 0 && E.taken()) // the if's own element
      ++TakenCount;
  }
  EXPECT_NEAR(static_cast<double>(TakenCount), 2000.0, 150.0);
}

TEST(InterpreterTest, MaxCallDepthTracked) {
  ExecutionResult R = run(
      "program t;"
      "method f(d) { branch a; when (d > 0) { call f(d - 1); } }"
      "method main() { call f(9); }");
  EXPECT_EQ(R.Stats.MaxCallDepth, 11u); // main + f(9..0)
}
