//===- tests/SharedScanTest.cpp - Shared-scan differential tests --------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared-scan engine (core/SharedScan.h) is only admissible
/// because it is bit-identical to running each config through its own
/// detector. This suite is the guard: it drives the full configuration
/// shape grid through the engine and requires equal StateSequences,
/// detected phases, and anchored phases against both the per-config
/// fast path and the reference PhaseDetector, on both the batch and
/// portable kernel backends; it holds the sweep harness's shared and
/// per-config engines to bit-identical scores (pruned and unpruned);
/// and it pins the paper preset's group structure so plan regressions
/// are loud.
///
//===----------------------------------------------------------------------===//

#include "core/DetectorRunner.h"
#include "core/FastDetector.h"
#include "core/SharedScan.h"
#include "harness/Experiment.h"
#include "harness/Sweep.h"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <memory>

using namespace opd;

namespace {

/// One small-scale workload shared by all differential tests.
const BenchmarkData &testBenchmark() {
  static const std::vector<BenchmarkData> Data =
      prepareBenchmarks({"jess"}, {1000, 10000}, /*Scale=*/0.1);
  return Data.front();
}

/// The shape-and-corner-case cross product FastDetectorTest also uses:
/// all three models, both TW policies, all three analyzer kinds, both
/// anchors and resizes, a skip factor above the CW size, and Fixed
/// Interval.
std::vector<DetectorConfig> differentialConfigs() {
  SweepSpec Spec;
  Spec.CWSizes = {50, 400};
  Spec.TWFactors = {1, 2};
  Spec.SkipFactors = {1, 10, 500};
  Spec.IncludeFixedInterval = true;
  Spec.Models = {ModelKind::UnweightedSet, ModelKind::WeightedSet,
                 ModelKind::ManhattanBBV};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.5},
                    {AnalyzerKind::Threshold, 0.8},
                    {AnalyzerKind::Average, 0.01},
                    {AnalyzerKind::Average, 0.3},
                    {AnalyzerKind::Hysteresis, 0.6},
                    {AnalyzerKind::Hysteresis, 0.1}};
  Spec.Anchors = {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy};
  Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  return enumerateCrossProduct(Spec);
}

void expectRunsEqual(const DetectorRun &Expected, const DetectorRun &Actual,
                     const DetectorConfig &Config, const char *Leg) {
  std::string Desc = Config.describe() + " [" + Leg + "]";
  ASSERT_EQ(Expected.States.size(), Actual.States.size()) << Desc;
  const std::vector<StateRun> &ER = Expected.States.runs();
  const std::vector<StateRun> &AR = Actual.States.runs();
  ASSERT_EQ(ER.size(), AR.size()) << Desc;
  for (size_t I = 0; I != ER.size(); ++I) {
    ASSERT_EQ(ER[I].Begin, AR[I].Begin) << Desc << " run " << I;
    ASSERT_EQ(ER[I].Length, AR[I].Length) << Desc << " run " << I;
    ASSERT_EQ(ER[I].State, AR[I].State) << Desc << " run " << I;
  }
  ASSERT_EQ(Expected.DetectedPhases, Actual.DetectedPhases) << Desc;
  ASSERT_EQ(Expected.AnchoredPhases, Actual.AnchoredPhases) << Desc;
}

/// Runs \p Configs through the shared-scan engine the way the sweep
/// harness does — grouped by planSharedScan, one reused engine per
/// model — and returns one DetectorRun per config, in config order.
std::vector<DetectorRun>
runShared(const std::vector<DetectorConfig> &Configs,
          const BranchTrace &Trace, bool BatchKernels) {
  SharedScanPlan Plan = planSharedScan(Configs);
  std::array<std::unique_ptr<SharedScanEngineBase>, 3> Engines;
  std::vector<DetectorRun> Out(Configs.size());
  std::vector<DetectorRun> GroupRuns;
  for (const SharedScanGroup &G : Plan.Groups) {
    std::unique_ptr<SharedScanEngineBase> &Engine =
        Engines[static_cast<size_t>(G.Key.Model)];
    if (!Engine)
      Engine = makeSharedScanEngine(G.Key.Model, Trace.numSites());
    Engine->setBatchKernels(BatchKernels);
    if (GroupRuns.size() < G.Members.size())
      GroupRuns.resize(G.Members.size());
    Engine->run(Configs, G.Members, Trace.elements().data(), Trace.size(),
                GroupRuns);
    for (size_t I = 0; I != G.Members.size(); ++I)
      Out[G.Members[I]] = GroupRuns[I];
  }
  return Out;
}

} // namespace

TEST(SharedScanTest, PlanPartitionsByWindowKernelShape) {
  std::vector<DetectorConfig> Configs = differentialConfigs();
  SharedScanPlan Plan = planSharedScan(Configs);

  // Every config lands in exactly one group, under its own key.
  std::vector<size_t> Seen(Configs.size(), 0);
  for (const SharedScanGroup &G : Plan.Groups) {
    EXPECT_FALSE(G.Members.empty());
    for (size_t Member : G.Members) {
      ASSERT_LT(Member, Configs.size());
      ++Seen[Member];
      EXPECT_TRUE(sharedScanKey(Configs[Member]) == G.Key);
    }
  }
  for (size_t Count : Seen)
    EXPECT_EQ(Count, 1u);

  // Exactly one group per distinct (model, CW, TW) shape.
  std::map<SharedScanKey, size_t> Distinct;
  for (const DetectorConfig &C : Configs)
    ++Distinct[sharedScanKey(C)];
  EXPECT_EQ(Plan.Groups.size(), Distinct.size());
  EXPECT_EQ(Plan.largestGroup(),
            [&] {
              size_t Largest = 0;
              for (const auto &[Key, Count] : Distinct)
                Largest = std::max(Largest, Count);
              return Largest;
            }());

  // The plan is deterministic.
  SharedScanPlan Again = planSharedScan(Configs);
  ASSERT_EQ(Plan.Groups.size(), Again.Groups.size());
  for (size_t I = 0; I != Plan.Groups.size(); ++I) {
    EXPECT_TRUE(Plan.Groups[I].Key == Again.Groups[I].Key);
    EXPECT_EQ(Plan.Groups[I].Members, Again.Groups[I].Members);
  }
}

// The load-bearing test: every configuration in the shape/corner-case
// cross product produces bit-identical output through the shared scan,
// the per-config fast path, and the reference detector — on both the
// batch and portable kernel backends.
TEST(SharedScanTest, BitIdenticalToFastAndReferenceAcrossTheConfigSpace) {
  const BenchmarkData &B = testBenchmark();
  std::vector<DetectorConfig> Configs = differentialConfigs();
  ASSERT_GT(Configs.size(), 500u);

  std::vector<DetectorRun> Shared =
      runShared(Configs, B.Trace, /*BatchKernels=*/true);
  std::vector<DetectorRun> Portable =
      runShared(Configs, B.Trace, /*BatchKernels=*/false);

  for (size_t I = 0; I != Configs.size(); ++I) {
    const DetectorConfig &Config = Configs[I];
    std::unique_ptr<FastDetectorBase> Fast =
        makeFastDetector(Config, B.Trace.numSites());
    DetectorRun FastRun = runDetector(*Fast, B.Trace);
    expectRunsEqual(FastRun, Shared[I], Config, "shared vs fast");
    expectRunsEqual(FastRun, Portable[I], Config,
                    "shared portable vs fast");

    std::unique_ptr<PhaseDetector> Reference =
        makeDetector(Config, B.Trace.numSites());
    DetectorRun ReferenceRun = runDetector(*Reference, B.Trace);
    expectRunsEqual(ReferenceRun, Shared[I], Config, "shared vs reference");
  }
}

// Window/stride corners the grid's fixed sizes miss: a skip that never
// divides the trace, a skip exceeding the trace length (one short batch
// covers everything), and windows larger than the trace (never full —
// a single forced-Transition run).
TEST(SharedScanTest, StrideAndWindowCornerCases) {
  const BenchmarkData &B = testBenchmark();
  uint64_t TraceLen = B.Trace.size();
  ASSERT_GT(TraceLen, 0u);

  std::vector<DetectorConfig> Configs;
  for (ModelKind M : {ModelKind::UnweightedSet, ModelKind::WeightedSet})
    for (TWPolicyKind P : {TWPolicyKind::Constant, TWPolicyKind::Adaptive})
      for (uint32_t Skip :
           {uint32_t{97}, static_cast<uint32_t>(TraceLen + 13)}) {
        DetectorConfig C;
        C.Window.CWSize = 100;
        C.Window.TWSize = 100;
        C.Window.SkipFactor = Skip;
        C.Window.TWPolicy = P;
        C.Model = M;
        C.TheAnalyzer = AnalyzerKind::Threshold;
        C.AnalyzerParam = 0.6;
        Configs.push_back(C);
      }
  // Windows that never fill: every evaluation is a forced Transition.
  DetectorConfig Huge;
  Huge.Window.CWSize = static_cast<uint32_t>(TraceLen);
  Huge.Window.TWSize = static_cast<uint32_t>(TraceLen);
  Huge.Window.SkipFactor = 50;
  Huge.Model = ModelKind::UnweightedSet;
  Huge.TheAnalyzer = AnalyzerKind::Threshold;
  Huge.AnalyzerParam = 0.5;
  Configs.push_back(Huge);
  ASSERT_NE(TraceLen % 97, 0u);

  std::vector<DetectorRun> Shared =
      runShared(Configs, B.Trace, /*BatchKernels=*/true);
  for (size_t I = 0; I != Configs.size(); ++I) {
    std::unique_ptr<FastDetectorBase> Fast =
        makeFastDetector(Configs[I], B.Trace.numSites());
    DetectorRun FastRun = runDetector(*Fast, B.Trace);
    expectRunsEqual(FastRun, Shared[I], Configs[I], "corner");
  }
}

// The sweep harness's two engines — shared-scan (default) and
// per-config — must produce bit-identical scores, pruned or not.
TEST(SharedScanTest, SweepSharedEngineMatchesPerConfigScores) {
  const BenchmarkData &B = testBenchmark();
  SweepSpec Spec;
  Spec.CWSizes = {250};
  Spec.SkipFactors = {1, 10};
  Spec.Models = {ModelKind::UnweightedSet, ModelKind::WeightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6},
                    {AnalyzerKind::Average, 0.05},
                    {AnalyzerKind::Hysteresis, 0.4}};
  Spec.Anchors = {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy};
  Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);

  for (bool Prune : {false, true}) {
    SweepOptions SharedOptions;
    SharedOptions.ScoreAnchored = true;
    SharedOptions.Prune = Prune;
    SharedOptions.SharedScan = true;
    SweepOptions PerConfigOptions = SharedOptions;
    PerConfigOptions.SharedScan = false;

    SweepStats SharedStats;
    std::vector<RunScores> Shared =
        runSweep(B.Trace, B.Baselines, Configs, SharedOptions, &SharedStats);
    std::vector<RunScores> PerConfig =
        runSweep(B.Trace, B.Baselines, Configs, PerConfigOptions);

    EXPECT_EQ(SharedStats.NumConfigs, Configs.size());
    EXPECT_EQ(SharedStats.RunsExecuted + SharedStats.RunsPruned,
              Configs.size());

    ASSERT_EQ(Shared.size(), PerConfig.size());
    for (size_t I = 0; I != Shared.size(); ++I) {
      ASSERT_EQ(Shared[I].PerMPL.size(), PerConfig[I].PerMPL.size());
      for (size_t M = 0; M != Shared[I].PerMPL.size(); ++M) {
        EXPECT_EQ(Shared[I].PerMPL[M].Score, PerConfig[I].PerMPL[M].Score);
        EXPECT_EQ(Shared[I].PerMPL[M].Correlation,
                  PerConfig[I].PerMPL[M].Correlation);
        EXPECT_EQ(Shared[I].PerMPL[M].Sensitivity,
                  PerConfig[I].PerMPL[M].Sensitivity);
        EXPECT_EQ(Shared[I].PerMPL[M].FalsePositives,
                  PerConfig[I].PerMPL[M].FalsePositives);
      }
      ASSERT_EQ(Shared[I].AnchoredPerMPL.size(),
                PerConfig[I].AnchoredPerMPL.size());
      for (size_t M = 0; M != Shared[I].AnchoredPerMPL.size(); ++M)
        EXPECT_EQ(Shared[I].AnchoredPerMPL[M].Score,
                  PerConfig[I].AnchoredPerMPL[M].Score);
    }
  }
}

// An engine is an arena: running a group must not be affected by the
// groups the engine ran before (cursor arrays, shard pools, and kernel
// state are all reused). Run the groups twice through one engine set,
// in opposite orders, and require identical output.
TEST(SharedScanTest, EngineReuseAcrossGroupsMatchesFreshEngines) {
  const BenchmarkData &B = testBenchmark();
  std::vector<DetectorConfig> Configs = differentialConfigs();
  SharedScanPlan Plan = planSharedScan(Configs);
  ASSERT_GT(Plan.Groups.size(), 1u);

  std::array<std::unique_ptr<SharedScanEngineBase>, 3> Engines;
  for (size_t I = 0; I != 3; ++I)
    Engines[I] = makeSharedScanEngine(static_cast<ModelKind>(I),
                                      B.Trace.numSites());

  std::vector<DetectorRun> Forward(Configs.size());
  std::vector<DetectorRun> GroupRuns;
  for (const SharedScanGroup &G : Plan.Groups) {
    GroupRuns.resize(std::max(GroupRuns.size(), G.Members.size()));
    Engines[static_cast<size_t>(G.Key.Model)]->run(
        Configs, G.Members, B.Trace.elements().data(), B.Trace.size(),
        GroupRuns);
    for (size_t I = 0; I != G.Members.size(); ++I)
      Forward[G.Members[I]] = GroupRuns[I];
  }
  // Reverse pass through the same (now warm) engines.
  for (auto It = Plan.Groups.rbegin(); It != Plan.Groups.rend(); ++It) {
    const SharedScanGroup &G = *It;
    Engines[static_cast<size_t>(G.Key.Model)]->run(
        Configs, G.Members, B.Trace.elements().data(), B.Trace.size(),
        GroupRuns);
    for (size_t I = 0; I != G.Members.size(); ++I)
      expectRunsEqual(Forward[G.Members[I]], GroupRuns[I],
                      Configs[G.Members[I]], "warm reuse");
  }
}
