//===- tests/ServeProtocolTest.cpp - Wire-protocol codec tests --------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framing codec (serve/Protocol.h) is the server's outermost attack
/// surface, so these tests pin it down without any sockets: every
/// message kind round-trips through its encoder and parser, frames
/// survive arbitrary re-chunking through FrameReader, and truncated,
/// oversized, zero-length, and bit-flipped inputs are rejected without
/// the reader ever resynchronizing on garbage.
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

/// Feeds \p Bytes in chunks of \p Chunk and collects complete frames as
/// (kind, payload copy) pairs.
std::vector<std::pair<MsgKind, std::vector<uint8_t>>>
decodeAll(const std::vector<uint8_t> &Bytes, size_t Chunk,
          FrameReader &Reader) {
  std::vector<std::pair<MsgKind, std::vector<uint8_t>>> Out;
  size_t Pos = 0;
  while (Pos < Bytes.size() || Pos == 0) {
    size_t Take = std::min(Chunk, Bytes.size() - Pos);
    Reader.feed(Bytes.data() + Pos, Take);
    Pos += Take;
    Frame F;
    while (Reader.next(F) == FrameReader::Status::Frame)
      Out.push_back({F.Kind, {F.Payload, F.Payload + F.Len}});
    if (Pos >= Bytes.size())
      break;
  }
  return Out;
}

DetectorConfig sampleConfig() {
  DetectorConfig C;
  C.Window.CWSize = 400;
  C.Window.TWSize = 800;
  C.Window.SkipFactor = 17;
  C.Window.TWPolicy = TWPolicyKind::Adaptive;
  C.Window.Anchor = AnchorKind::LeftmostNonNoisy;
  C.Window.Resize = ResizeKind::Move;
  C.Model = ModelKind::WeightedSet;
  C.TheAnalyzer = AnalyzerKind::Hysteresis;
  C.AnalyzerParam = 0.625;
  return C;
}

TEST(ServeProtocol, HelloRoundTrip) {
  HelloMsg In;
  In.Flags = HelloWantAnchors | HelloWantProgress;
  In.NumSites = 12345;
  In.Config = sampleConfig();

  std::vector<uint8_t> Bytes;
  appendHello(Bytes, In);

  FrameReader Reader;
  Reader.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(Reader.next(F), FrameReader::Status::Frame);
  EXPECT_EQ(F.Kind, MsgKind::Hello);

  HelloMsg Out;
  ASSERT_EQ(parseHello(F, Out), ServeError::None);
  EXPECT_EQ(Out.Flags, In.Flags);
  EXPECT_EQ(Out.NumSites, In.NumSites);
  EXPECT_EQ(Out.Config, In.Config);
  EXPECT_EQ(Reader.buffered(), 0u);
}

TEST(ServeProtocol, HelloRejectsMagicAndVersion) {
  HelloMsg In;
  In.NumSites = 1;
  std::vector<uint8_t> Bytes;
  appendHello(Bytes, In);

  // Payload starts after the 4-byte length and 1-byte kind: magic first,
  // version next.
  std::vector<uint8_t> BadMagic = Bytes;
  BadMagic[5] ^= 0xFF;
  FrameReader R1;
  R1.feed(BadMagic.data(), BadMagic.size());
  Frame F;
  ASSERT_EQ(R1.next(F), FrameReader::Status::Frame);
  HelloMsg Out;
  EXPECT_EQ(parseHello(F, Out), ServeError::BadMagic);

  std::vector<uint8_t> BadVersion = Bytes;
  BadVersion[9] = 0xEE;
  FrameReader R2;
  R2.feed(BadVersion.data(), BadVersion.size());
  ASSERT_EQ(R2.next(F), FrameReader::Status::Frame);
  EXPECT_EQ(parseHello(F, Out), ServeError::BadVersion);
}

TEST(ServeProtocol, HelloRejectsOutOfRangeEnums) {
  HelloMsg In;
  In.NumSites = 10;
  In.Config = sampleConfig();
  std::vector<uint8_t> Bytes;
  appendHello(Bytes, In);
  // The five policy enum bytes precede the trailing 8-byte analyzer
  // parameter.
  size_t FirstEnum = Bytes.size() - 8 - 5;
  for (size_t I = 0; I != 5; ++I) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[FirstEnum + I] = 0x7F;
    FrameReader R;
    R.feed(Bad.data(), Bad.size());
    Frame F;
    ASSERT_EQ(R.next(F), FrameReader::Status::Frame);
    HelloMsg Out;
    EXPECT_EQ(parseHello(F, Out), ServeError::BadFrame) << "enum byte " << I;
  }
}

TEST(ServeProtocol, ServerMessagesRoundTrip) {
  std::vector<uint8_t> Bytes;

  HelloAckMsg Ack;
  Ack.SessionId = 0x1122334455667788ull;
  Ack.BatchSize = 100;
  Ack.MaxBatch = MaxElementsPerFrame;
  appendHelloAck(Bytes, Ack);

  TransitionMsg T1;
  T1.Offset = 4200;
  T1.NewState = PhaseState::InPhase;
  T1.HasAnchor = true;
  T1.Anchor = 4100;
  appendTransition(Bytes, T1);

  TransitionMsg T2;
  T2.Offset = 9000;
  T2.NewState = PhaseState::Transition;
  appendTransition(Bytes, T2);

  ProgressMsg P;
  P.Ingested = 123456789ull;
  appendProgress(Bytes, P);

  FinishedMsg Fin;
  Fin.Elements = 999;
  Fin.Transitions = 2;
  Fin.FinalState = PhaseState::InPhase;
  appendFinished(Bytes, Fin);

  appendError(Bytes, ServeError::BadConfig, "window too large");

  // Decode at several chunkings, including byte-at-a-time.
  for (size_t Chunk : {size_t(1), size_t(3), size_t(64), Bytes.size()}) {
    FrameReader Reader;
    auto Frames = decodeAll(Bytes, Chunk, Reader);
    ASSERT_EQ(Frames.size(), 6u) << "chunk " << Chunk;

    Frame F{Frames[0].first, Frames[0].second.data(),
            Frames[0].second.size()};
    HelloAckMsg AckOut;
    ASSERT_TRUE(parseHelloAck(F, AckOut));
    EXPECT_EQ(AckOut.SessionId, Ack.SessionId);
    EXPECT_EQ(AckOut.BatchSize, Ack.BatchSize);
    EXPECT_EQ(AckOut.MaxBatch, Ack.MaxBatch);

    F = {Frames[1].first, Frames[1].second.data(), Frames[1].second.size()};
    TransitionMsg TOut;
    ASSERT_TRUE(parseTransition(F, TOut));
    EXPECT_EQ(TOut.Offset, T1.Offset);
    EXPECT_EQ(TOut.NewState, PhaseState::InPhase);
    EXPECT_TRUE(TOut.HasAnchor);
    EXPECT_EQ(TOut.Anchor, T1.Anchor);

    F = {Frames[2].first, Frames[2].second.data(), Frames[2].second.size()};
    ASSERT_TRUE(parseTransition(F, TOut));
    EXPECT_EQ(TOut.NewState, PhaseState::Transition);
    EXPECT_FALSE(TOut.HasAnchor);

    F = {Frames[3].first, Frames[3].second.data(), Frames[3].second.size()};
    ProgressMsg POut;
    ASSERT_TRUE(parseProgress(F, POut));
    EXPECT_EQ(POut.Ingested, P.Ingested);

    F = {Frames[4].first, Frames[4].second.data(), Frames[4].second.size()};
    FinishedMsg FinOut;
    ASSERT_TRUE(parseFinished(F, FinOut));
    EXPECT_EQ(FinOut.Elements, Fin.Elements);
    EXPECT_EQ(FinOut.Transitions, Fin.Transitions);
    EXPECT_EQ(FinOut.FinalState, PhaseState::InPhase);

    F = {Frames[5].first, Frames[5].second.data(), Frames[5].second.size()};
    ErrorMsg EOut;
    ASSERT_TRUE(parseError(F, EOut));
    EXPECT_EQ(EOut.Code, ServeError::BadConfig);
    EXPECT_EQ(EOut.Message, "window too large");
  }
}

TEST(ServeProtocol, ElementsRoundTrip) {
  std::vector<SiteIndex> Elements = {0, 1, 7, 42, 0xFFFFFFFEu};
  std::vector<uint8_t> Bytes;
  appendElements(Bytes, Elements.data(), Elements.size());

  FrameReader Reader;
  Reader.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(Reader.next(F), FrameReader::Status::Frame);
  ASSERT_EQ(F.Kind, MsgKind::Elements);

  ElementsView View;
  ASSERT_TRUE(parseElements(F, View));
  ASSERT_EQ(View.Count, Elements.size());
  for (uint32_t I = 0; I != View.Count; ++I)
    EXPECT_EQ(View.element(I), Elements[I]);
}

TEST(ServeProtocol, ElementsRejectsCountMismatch) {
  std::vector<SiteIndex> Elements = {1, 2, 3};
  std::vector<uint8_t> Bytes;
  appendElements(Bytes, Elements.data(), Elements.size());
  // Inflate the count header (first payload u32) past the actual data.
  Bytes[5] = 0xFF;

  FrameReader Reader;
  Reader.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(Reader.next(F), FrameReader::Status::Frame);
  ElementsView View;
  EXPECT_FALSE(parseElements(F, View));
}

TEST(ServeProtocol, TruncatedFrameNeedsMore) {
  std::vector<uint8_t> Bytes;
  appendFinish(Bytes);
  FrameReader Reader;
  // All but the last byte: not decodable yet, not an error.
  Reader.feed(Bytes.data(), Bytes.size() - 1);
  Frame F;
  EXPECT_EQ(Reader.next(F), FrameReader::Status::NeedMore);
  Reader.feed(Bytes.data() + Bytes.size() - 1, 1);
  EXPECT_EQ(Reader.next(F), FrameReader::Status::Frame);
  EXPECT_EQ(F.Kind, MsgKind::Finish);
  EXPECT_EQ(Reader.next(F), FrameReader::Status::NeedMore);
}

TEST(ServeProtocol, OversizedLengthIsStickyCorruption) {
  // Length prefix far beyond MaxFrameLen.
  uint8_t Bytes[5] = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  FrameReader Reader;
  Reader.feed(Bytes, sizeof(Bytes));
  Frame F;
  EXPECT_EQ(Reader.next(F), FrameReader::Status::Corrupt);
  EXPECT_TRUE(Reader.corruptOversized());
  EXPECT_FALSE(Reader.corruptReason().empty());
  // Corruption is terminal: more (valid) bytes do not resynchronize.
  std::vector<uint8_t> Valid;
  appendFinish(Valid);
  Reader.feed(Valid.data(), Valid.size());
  EXPECT_EQ(Reader.next(F), FrameReader::Status::Corrupt);
}

TEST(ServeProtocol, ZeroLengthFrameIsCorrupt) {
  uint8_t Bytes[5] = {0, 0, 0, 0, 0};
  FrameReader Reader;
  Reader.feed(Bytes, sizeof(Bytes));
  Frame F;
  EXPECT_EQ(Reader.next(F), FrameReader::Status::Corrupt);
  EXPECT_FALSE(Reader.corruptOversized());
}

TEST(ServeProtocol, GarbagePayloadsRejectedByParsers) {
  // A structurally valid frame whose payload is too short for its kind.
  for (MsgKind K : {MsgKind::HelloAck, MsgKind::Transition, MsgKind::Progress,
                    MsgKind::Finished}) {
    std::vector<uint8_t> Bytes = {3, 0, 0, 0, uint8_t(K), 0xAB, 0xCD};
    FrameReader Reader;
    Reader.feed(Bytes.data(), Bytes.size());
    Frame F;
    ASSERT_EQ(Reader.next(F), FrameReader::Status::Frame);
    HelloAckMsg Ack;
    TransitionMsg T;
    ProgressMsg P;
    FinishedMsg Fin;
    switch (K) {
    case MsgKind::HelloAck:
      EXPECT_FALSE(parseHelloAck(F, Ack));
      break;
    case MsgKind::Transition:
      EXPECT_FALSE(parseTransition(F, T));
      break;
    case MsgKind::Progress:
      EXPECT_FALSE(parseProgress(F, P));
      break;
    default:
      EXPECT_FALSE(parseFinished(F, Fin));
      break;
    }
  }
}

TEST(ServeProtocol, TransitionRejectsBadStateAndAnchorBytes) {
  TransitionMsg T;
  T.Offset = 1;
  T.NewState = PhaseState::InPhase;
  std::vector<uint8_t> Bytes;
  appendTransition(Bytes, T);
  // Payload layout: u64 offset, u8 state, u8 has-anchor, u64 anchor.
  std::vector<uint8_t> BadState = Bytes;
  BadState[5 + 8] = 9;
  FrameReader R1;
  R1.feed(BadState.data(), BadState.size());
  Frame F;
  ASSERT_EQ(R1.next(F), FrameReader::Status::Frame);
  TransitionMsg Out;
  EXPECT_FALSE(parseTransition(F, Out));

  std::vector<uint8_t> BadAnchor = Bytes;
  BadAnchor[5 + 9] = 2;
  FrameReader R2;
  R2.feed(BadAnchor.data(), BadAnchor.size());
  ASSERT_EQ(R2.next(F), FrameReader::Status::Frame);
  EXPECT_FALSE(parseTransition(F, Out));
}

TEST(ServeProtocol, ErrorNamesAreStable) {
  EXPECT_STREQ(serveErrorName(ServeError::None), "none");
  EXPECT_STREQ(serveErrorName(ServeError::BadConfig), "bad-config");
  EXPECT_STREQ(serveErrorName(ServeError::Evicted), "evicted");
  EXPECT_STREQ(serveErrorName(ServeError::Shutdown), "shutdown");
}

} // namespace
