//===- tests/SupportTest.cpp - Unit tests for src/support --------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"
#include "support/Casting.h"
#include "support/Format.h"
#include "support/Parallel.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

using namespace opd;

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(SplitMix64Test, Deterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 A(7), B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Xoshiro256Test, NextBelowStaysInRange) {
  Xoshiro256 Rng(123);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 30})
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(Rng.nextBelow(Bound), Bound);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 Rng(99);
  for (int I = 0; I < 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Xoshiro256Test, NextBoolExtremes) {
  Xoshiro256 Rng(5);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(Rng.nextBool(0.0));
    EXPECT_TRUE(Rng.nextBool(1.0));
  }
}

TEST(Xoshiro256Test, NextBoolApproximatesProbability) {
  Xoshiro256 Rng(2024);
  int Hits = 0;
  const int Trials = 20000;
  for (int I = 0; I < Trials; ++I)
    Hits += Rng.nextBool(0.3);
  double Rate = static_cast<double>(Hits) / Trials;
  EXPECT_NEAR(Rate, 0.3, 0.02);
}

TEST(Xoshiro256Test, NextBelowRoughlyUniform) {
  Xoshiro256 Rng(31337);
  std::vector<int> Buckets(10, 0);
  const int Trials = 50000;
  for (int I = 0; I < Trials; ++I)
    ++Buckets[Rng.nextBelow(10)];
  for (int Count : Buckets)
    EXPECT_NEAR(Count, Trials / 10, Trials / 50);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats S;
  S.push(4.5);
  EXPECT_DOUBLE_EQ(S.mean(), 4.5);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 4.5);
  EXPECT_DOUBLE_EQ(S.max(), 4.5);
}

TEST(RunningStatsTest, MatchesBruteForce) {
  Xoshiro256 Rng(77);
  std::vector<double> Values;
  RunningStats S;
  for (int I = 0; I < 500; ++I) {
    double V = Rng.nextDouble() * 10.0 - 5.0;
    Values.push_back(V);
    S.push(V);
  }
  double Mean =
      std::accumulate(Values.begin(), Values.end(), 0.0) / Values.size();
  double Var = 0;
  for (double V : Values)
    Var += (V - Mean) * (V - Mean);
  Var /= Values.size();
  EXPECT_NEAR(S.mean(), Mean, 1e-9);
  EXPECT_NEAR(S.variance(), Var, 1e-9);
  EXPECT_NEAR(S.stddev(), std::sqrt(Var), 1e-9);
  EXPECT_DOUBLE_EQ(S.min(), *std::min_element(Values.begin(), Values.end()));
  EXPECT_DOUBLE_EQ(S.max(), *std::max_element(Values.begin(), Values.end()));
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats S;
  S.push(1.0);
  S.push(2.0);
  S.reset();
  EXPECT_TRUE(S.empty());
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
}

TEST(RunningPearsonTest, PerfectPositiveCorrelation) {
  RunningPearson P;
  for (int I = 0; I < 50; ++I)
    P.push(I, 2.0 * I + 3.0);
  EXPECT_NEAR(P.correlation(), 1.0, 1e-9);
}

TEST(RunningPearsonTest, PerfectNegativeCorrelation) {
  RunningPearson P;
  for (int I = 0; I < 50; ++I)
    P.push(I, -3.0 * I + 7.0);
  EXPECT_NEAR(P.correlation(), -1.0, 1e-9);
}

TEST(RunningPearsonTest, ZeroVarianceIsZero) {
  RunningPearson P;
  for (int I = 0; I < 10; ++I)
    P.push(5.0, I);
  EXPECT_DOUBLE_EQ(P.correlation(), 0.0);
}

TEST(RunningPearsonTest, UncorrelatedNearZero) {
  Xoshiro256 Rng(1);
  RunningPearson P;
  for (int I = 0; I < 20000; ++I)
    P.push(Rng.nextDouble(), Rng.nextDouble());
  EXPECT_NEAR(P.correlation(), 0.0, 0.05);
}

//===----------------------------------------------------------------------===//
// Format
//===----------------------------------------------------------------------===//

TEST(FormatTest, FormatCount) {
  EXPECT_EQ(formatCount(0), "0");
  EXPECT_EQ(formatCount(7), "7");
  EXPECT_EQ(formatCount(999), "999");
  EXPECT_EQ(formatCount(1000), "1,000");
  EXPECT_EQ(formatCount(62808794), "62,808,794");
  EXPECT_EQ(formatCount(1234567890123ULL), "1,234,567,890,123");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(formatDouble(0.5, 2), "0.50");
  EXPECT_EQ(formatDouble(33.875, 2), "33.88");
  EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(formatPercent(0.3388), "33.88");
  EXPECT_EQ(formatPercent(1.0), "100.00");
}

TEST(FormatTest, FormatAbbrev) {
  EXPECT_EQ(formatAbbrev(500), "500");
  EXPECT_EQ(formatAbbrev(1000), "1K");
  EXPECT_EQ(formatAbbrev(25000), "25K");
  EXPECT_EQ(formatAbbrev(100000), "100K");
  EXPECT_EQ(formatAbbrev(1500), "1.5K");
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, RendersHeaderAndRows) {
  Table T("My Table");
  T.setHeader({"Benchmark", "Score"});
  T.addRow({"compress", "0.65"});
  T.addRow({"jess", "0.70"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("My Table"), std::string::npos);
  EXPECT_NE(Out.find("Benchmark"), std::string::npos);
  EXPECT_NE(Out.find("compress"), std::string::npos);
  EXPECT_NE(Out.find("0.70"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TableTest, AlignmentPadsCells) {
  Table T;
  T.setHeader({"name", "value"});
  T.addRow({"a", "1"});
  std::string Out = T.render();
  // Right-aligned "1" under "value" has leading spaces.
  EXPECT_NE(Out.find("    1"), std::string::npos);
}

TEST(TableTest, CSVEscapesSpecials) {
  Table T;
  T.setHeader({"a", "b"});
  T.addRow({"x,y", "he said \"hi\""});
  std::string CSV = T.renderCSV();
  EXPECT_NE(CSV.find("\"x,y\""), std::string::npos);
  EXPECT_NE(CSV.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, SeparatorsSkippedInCSV) {
  Table T;
  T.setHeader({"a"});
  T.addRow({"1"});
  T.addSeparator();
  T.addRow({"2"});
  EXPECT_EQ(T.renderCSV(), "a\n1\n2\n");
  EXPECT_EQ(T.numRows(), 2u);
}

//===----------------------------------------------------------------------===//
// ArgParser
//===----------------------------------------------------------------------===//

TEST(ArgParserTest, ParsesFlagsAndOptions) {
  ArgParser P("tool", "test tool");
  P.addFlag("verbose", "be chatty");
  P.addOption("scale", "workload scale", "1.0");
  P.addOption("mpl", "minimum phase length", "10K");
  const char *Argv[] = {"tool", "--verbose", "--scale=0.5", "--mpl", "25K",
                        "input.jp"};
  ASSERT_TRUE(P.parse(6, Argv));
  EXPECT_TRUE(P.getFlag("verbose"));
  EXPECT_DOUBLE_EQ(P.getDouble("scale"), 0.5);
  EXPECT_EQ(P.getInt("mpl"), 25000);
  ASSERT_EQ(P.positional().size(), 1u);
  EXPECT_EQ(P.positional()[0], "input.jp");
}

TEST(ArgParserTest, DefaultsApply) {
  ArgParser P("tool", "test tool");
  P.addOption("scale", "workload scale", "2.5");
  const char *Argv[] = {"tool"};
  ASSERT_TRUE(P.parse(1, Argv));
  EXPECT_DOUBLE_EQ(P.getDouble("scale"), 2.5);
}

TEST(ArgParserTest, UnknownFlagFails) {
  ArgParser P("tool", "test tool");
  const char *Argv[] = {"tool", "--nope"};
  EXPECT_FALSE(P.parse(2, Argv));
}

TEST(ArgParserTest, MissingValueFails) {
  ArgParser P("tool", "test tool");
  P.addOption("scale", "workload scale", "1");
  const char *Argv[] = {"tool", "--scale"};
  EXPECT_FALSE(P.parse(2, Argv));
}

TEST(ArgParserTest, KSuffixInGetInt) {
  ArgParser P("tool", "test tool");
  P.addOption("mpl", "mpl", "100K");
  const char *Argv[] = {"tool"};
  ASSERT_TRUE(P.parse(1, Argv));
  EXPECT_EQ(P.getInt("mpl"), 100000);
}

//===----------------------------------------------------------------------===//
// Parallel
//===----------------------------------------------------------------------===//

TEST(ParallelTest, VisitsEveryIndexExactlyOnce) {
  const size_t N = 1000;
  std::vector<std::atomic<int>> Visits(N);
  parallelFor(N, [&](size_t I) { Visits[I].fetch_add(1); });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Visits[I].load(), 1);
}

TEST(ParallelTest, ZeroItemsIsANoop) {
  bool Called = false;
  parallelFor(0, [&](size_t) { Called = true; });
  EXPECT_FALSE(Called);
}

TEST(ParallelTest, HardwareParallelismPositive) {
  EXPECT_GE(hardwareParallelism(), 1u);
}

TEST(ParallelTest, ChunkedOverloadVisitsEveryIndexExactlyOnce) {
  // Grains that do and do not divide the item count, including one
  // larger than it.
  for (size_t Grain : {1, 7, 64, 5000}) {
    const size_t N = 1000;
    std::vector<std::atomic<int>> Visits(N);
    parallelFor(
        N,
        [&](size_t I, unsigned Worker) {
          EXPECT_LT(Worker, hardwareParallelism());
          Visits[I].fetch_add(1);
        },
        Grain);
    for (size_t I = 0; I != N; ++I)
      EXPECT_EQ(Visits[I].load(), 1) << "grain " << Grain;
  }
}

TEST(ParallelTest, ChunkedOverloadZeroGrainIsTreatedAsOne) {
  const size_t N = 100;
  std::vector<std::atomic<int>> Visits(N);
  parallelFor(
      N, [&](size_t I, unsigned) { Visits[I].fetch_add(1); }, 0);
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Visits[I].load(), 1);
}

TEST(ParallelTest, WorkerIdsAreStableWithinAChunk) {
  // Items of one chunk run on one worker: record the worker per item and
  // check each aligned Grain-sized chunk saw a single id.
  const size_t N = 256;
  const size_t Grain = 16;
  std::vector<unsigned> Worker(N, ~0u);
  parallelFor(
      N, [&](size_t I, unsigned W) { Worker[I] = W; }, Grain);
  for (size_t Base = 0; Base < N; Base += Grain)
    for (size_t I = Base; I != Base + Grain; ++I)
      EXPECT_EQ(Worker[I], Worker[Base]) << "item " << I;
}
