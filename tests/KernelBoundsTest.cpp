//===- tests/KernelBoundsTest.cpp - Kernel value-range certifier tests --------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the interval-domain kernel certifier
/// (analysis/KernelBounds.h), plus the acceptance gate of the whole
/// scheme: the CheckedKernelArith shadow detectors stream a real
/// workload trace through every configuration of the fast-path
/// differential cross product, and every runtime value the probe
/// observes must fall inside the certified interval for its quantity —
/// with zero arithmetic overflows — on both the reference and the fast
/// path. A certificate the shadow run cannot violate is what licenses
/// the SIMD lane plan.
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelBounds.h"
#include "core/DetectorRunner.h"
#include "core/FastDetector.h"
#include "harness/Experiment.h"
#include "harness/Sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

using namespace opd;

namespace {

DetectorConfig makeConfig(ModelKind Model, TWPolicyKind Policy,
                          AnalyzerKind Analyzer, uint32_t CW, uint32_t TW,
                          double Param = 0.5) {
  DetectorConfig C;
  C.Model = Model;
  C.Window.TWPolicy = Policy;
  C.Window.CWSize = CW;
  C.Window.TWSize = TW;
  C.TheAnalyzer = Analyzer;
  C.AnalyzerParam = Param;
  return C;
}

bool hasCode(const DiagnosticEngine &Diags, const char *Code) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Code == Code)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Interval derivation
//===----------------------------------------------------------------------===//

TEST(KernelBoundsTest, ConstantTWBoundsNeedNoTraceStats) {
  // A constant TW caps every quantity from the config alone.
  KernelCertificate Cert =
      certifyKernel(makeConfig(ModelKind::WeightedSet, TWPolicyKind::Constant,
                               AnalyzerKind::Threshold, 100, 200));
  EXPECT_TRUE(Cert.NoWraparound);
  EXPECT_EQ(Cert.bound(KernelQuantity::CWCount).Max, 100u);
  EXPECT_EQ(Cert.bound(KernelQuantity::TWCount).Max, 200u);
  EXPECT_EQ(Cert.bound(KernelQuantity::CWTotal).Max, 100u);
  EXPECT_EQ(Cert.bound(KernelQuantity::TWTotal).Max, 200u);
  EXPECT_EQ(Cert.bound(KernelQuantity::ProductCWTW).Max, 100u * 200u);
  EXPECT_EQ(Cert.bound(KernelQuantity::MinSum).Max, 100u * 200u);
  EXPECT_FALSE(Cert.bound(KernelQuantity::CWDistinct).Applicable);
  EXPECT_EQ(Cert.bound(KernelQuantity::ProductCWTW).Bits, 15u); // 20000
  EXPECT_EQ(Cert.CountLaneBits, 8u);                            // 200 < 2^8
  EXPECT_EQ(Cert.ProductLaneBits, 16u);
  EXPECT_EQ(Cert.Exactness, ThresholdExactness::ExactWithin53);

  DiagnosticEngine Diags;
  lintCertificate(Cert, Diags);
  EXPECT_TRUE(Diags.empty());
}

TEST(KernelBoundsTest, AdaptiveTWIsUnboundedWithoutATraceLength) {
  DetectorConfig C = makeConfig(ModelKind::WeightedSet, TWPolicyKind::Adaptive,
                                AnalyzerKind::Threshold, 100, 100);
  KernelCertificate Cert = certifyKernel(C);
  EXPECT_FALSE(Cert.NoWraparound);
  EXPECT_TRUE(Cert.bound(KernelQuantity::CWCount).Bounded);
  EXPECT_FALSE(Cert.bound(KernelQuantity::TWCount).Bounded);
  EXPECT_FALSE(Cert.bound(KernelQuantity::ProductCWTW).Bounded);
  EXPECT_EQ(Cert.ProductLaneBits, 0u);

  DiagnosticEngine Diags;
  lintCertificate(Cert, Diags);
  EXPECT_TRUE(hasCode(Diags, "kernel-unbounded-tw"));
  EXPECT_FALSE(Diags.hasErrors());

  // A trace length closes the gap: every quantity becomes bounded.
  TraceBounds Stats;
  Stats.TraceLen = 1000000;
  KernelCertificate Tight = certifyKernel(C, Stats);
  EXPECT_TRUE(Tight.NoWraparound);
  EXPECT_EQ(Tight.bound(KernelQuantity::TWCount).Max, 1000000u);
  EXPECT_EQ(Tight.bound(KernelQuantity::ProductCWTW).Max,
            uint64_t(100) * 1000000u);
}

TEST(KernelBoundsTest, TraceStatsTightenMonotonically) {
  DetectorConfig C = makeConfig(ModelKind::WeightedSet, TWPolicyKind::Adaptive,
                                AnalyzerKind::Threshold, 500, 500);
  TraceBounds Small, Large;
  Small.TraceLen = 1000000;
  Large.TraceLen = 2000000;
  KernelCertificate SC = certifyKernel(C, Small);
  KernelCertificate LC = certifyKernel(C, Large);
  for (size_t Q = 0; Q != NumKernelQuantities; ++Q) {
    if (!SC.Bounds[Q].Applicable)
      continue;
    EXPECT_LE(SC.Bounds[Q].Max, LC.Bounds[Q].Max)
        << kernelQuantityName(static_cast<KernelQuantity>(Q));
    EXPECT_LE(SC.Bounds[Q].Bits, LC.Bounds[Q].Bits);
  }

  // A multiplicity bound can only tighten further.
  TraceBounds WithMult = Small;
  WithMult.MaxMultiplicity = 300;
  KernelCertificate MC = certifyKernel(C, WithMult);
  EXPECT_EQ(MC.bound(KernelQuantity::CWCount).Max, 300u);
  EXPECT_LE(MC.bound(KernelQuantity::ProductCWTW).Max,
            SC.bound(KernelQuantity::ProductCWTW).Max);
}

TEST(KernelBoundsTest, AdversarialBoundaryConfigIsRejected) {
  // CW at 4e9 with an 8e9-element trace: the TW count bound exceeds
  // uint32_t and the cross products exceed uint64_t. Both must surface
  // as errors — this config may not run on the integer kernels.
  DetectorConfig C =
      makeConfig(ModelKind::WeightedSet, TWPolicyKind::Adaptive,
                 AnalyzerKind::Threshold, 4000000000u, 4000000000u);
  TraceBounds Stats;
  Stats.TraceLen = 8000000000ull;
  KernelCertificate Cert = certifyKernel(C, Stats);
  EXPECT_FALSE(Cert.NoWraparound);
  EXPECT_FALSE(Cert.bound(KernelQuantity::TWCount).FitsStorage);
  EXPECT_TRUE(Cert.bound(KernelQuantity::TWCount).Bounded);
  EXPECT_FALSE(Cert.bound(KernelQuantity::ProductTWCW).FitsStorage);
  EXPECT_EQ(Cert.bound(KernelQuantity::ProductTWCW).Bits, 65u);
  EXPECT_EQ(Cert.bound(KernelQuantity::ProductTWCW).Max, UINT64_MAX)
      << "saturated for reporting";

  DiagnosticEngine Diags;
  lintCertificate(Cert, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_TRUE(hasCode(Diags, "kernel-count-overflow"));
  EXPECT_TRUE(hasCode(Diags, "kernel-product-overflow"));
}

TEST(KernelBoundsTest, NearLimitProductsWarnWithoutError) {
  // 2^30 x 2^30 = 2^60: fits uint64_t but within the 6-bit guard band.
  KernelCertificate Cert = certifyKernel(
      makeConfig(ModelKind::WeightedSet, TWPolicyKind::Constant,
                 AnalyzerKind::Threshold, uint32_t(1) << 30, uint32_t(1) << 30));
  EXPECT_TRUE(Cert.NoWraparound);
  DiagnosticEngine Diags;
  lintCertificate(Cert, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(hasCode(Diags, "kernel-product-near-64bit"));
}

//===----------------------------------------------------------------------===//
// Threshold-exactness classification
//===----------------------------------------------------------------------===//

TEST(KernelBoundsTest, ExactnessClassification) {
  // Unweighted threshold: both comparison operands are distinct-site
  // counts < 2^32, always exact in double.
  EXPECT_EQ(certifyKernel(makeConfig(ModelKind::UnweightedSet,
                                     TWPolicyKind::Constant,
                                     AnalyzerKind::Threshold, 1u << 30,
                                     1u << 30))
                .Exactness,
            ThresholdExactness::ExactWithin53);
  // Weighted threshold: exact while MinSum stays below 2^53...
  EXPECT_EQ(certifyKernel(makeConfig(ModelKind::WeightedSet,
                                     TWPolicyKind::Constant,
                                     AnalyzerKind::Threshold, 1000, 1000))
                .Exactness,
            ThresholdExactness::ExactWithin53);
  // ...and needs the margin fallback once 2^27 x 2^27 = 2^54 exceeds it.
  EXPECT_EQ(certifyKernel(makeConfig(ModelKind::WeightedSet,
                                     TWPolicyKind::Constant,
                                     AnalyzerKind::Threshold, 1u << 27,
                                     1u << 27))
                .Exactness,
            ThresholdExactness::MarginFallback);
  // Average/Hysteresis consume the quotient; Manhattan is FP-valued.
  EXPECT_EQ(certifyKernel(makeConfig(ModelKind::WeightedSet,
                                     TWPolicyKind::Constant,
                                     AnalyzerKind::Average, 1000, 1000, 0.05))
                .Exactness,
            ThresholdExactness::QuotientPath);
  EXPECT_EQ(certifyKernel(makeConfig(ModelKind::ManhattanBBV,
                                     TWPolicyKind::Constant,
                                     AnalyzerKind::Threshold, 1000, 1000))
                .Exactness,
            ThresholdExactness::QuotientPath);

  EXPECT_STREQ(thresholdExactnessName(ThresholdExactness::ExactWithin53),
               "exact-53");
  EXPECT_STREQ(thresholdExactnessName(ThresholdExactness::MarginFallback),
               "margin-fallback");
  EXPECT_STREQ(thresholdExactnessName(ThresholdExactness::QuotientPath),
               "quotient-path");
}

//===----------------------------------------------------------------------===//
// Certificate merging
//===----------------------------------------------------------------------===//

TEST(KernelBoundsTest, MergeJoinsIntervalsAndWeakensClaims) {
  DetectorConfig Small = makeConfig(ModelKind::WeightedSet,
                                    TWPolicyKind::Constant,
                                    AnalyzerKind::Threshold, 100, 100);
  DetectorConfig Big = makeConfig(ModelKind::WeightedSet,
                                  TWPolicyKind::Constant,
                                  AnalyzerKind::Threshold, 1u << 27, 1u << 27);
  KernelCertificate Into = certifyKernel(Small);
  KernelCertificate Other = certifyKernel(Big);
  ASSERT_EQ(Into.Shape, Other.Shape);
  mergeCertificate(Into, Other);
  EXPECT_EQ(Into.NumConfigs, 2u);
  EXPECT_EQ(Into.bound(KernelQuantity::CWCount).Max, uint64_t(1) << 27);
  EXPECT_EQ(Into.bound(KernelQuantity::ProductCWTW).Max, uint64_t(1) << 54);
  EXPECT_TRUE(Into.NoWraparound);
  // The merged exactness is the weaker claim.
  EXPECT_EQ(Into.Exactness, ThresholdExactness::MarginFallback);

  // Merging an unbounded certificate poisons the join.
  KernelCertificate Unbounded = certifyKernel(
      makeConfig(ModelKind::WeightedSet, TWPolicyKind::Adaptive,
                 AnalyzerKind::Threshold, 100, 100));
  KernelCertificate Target = certifyKernel(
      makeConfig(ModelKind::WeightedSet, TWPolicyKind::Adaptive,
                 AnalyzerKind::Threshold, 50, 50),
      TraceBounds{1000000, 0, 0});
  ASSERT_EQ(Target.Shape, Unbounded.Shape);
  EXPECT_TRUE(Target.NoWraparound);
  mergeCertificate(Target, Unbounded);
  EXPECT_FALSE(Target.NoWraparound);
  EXPECT_FALSE(Target.bound(KernelQuantity::TWCount).Bounded);
}

//===----------------------------------------------------------------------===//
// The acceptance gate: shadow-instrumented detectors across the full
// differential cross product never leave their certified intervals.
//===----------------------------------------------------------------------===//

namespace {

/// One small-scale workload (shared with tests/FastDetectorTest.cpp).
const BenchmarkData &testBenchmark() {
  static const std::vector<BenchmarkData> Data =
      prepareBenchmarks({"jess"}, {1000, 10000}, /*Scale=*/0.1);
  return Data.front();
}

/// The same shape-and-corner-case cross product the fast-path
/// differential suite streams (~1700 configs).
std::vector<DetectorConfig> differentialConfigs() {
  SweepSpec Spec;
  Spec.CWSizes = {50, 400};
  Spec.TWFactors = {1, 2};
  Spec.SkipFactors = {1, 10, 500};
  Spec.IncludeFixedInterval = true;
  Spec.Models = {ModelKind::UnweightedSet, ModelKind::WeightedSet,
                 ModelKind::ManhattanBBV};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.5},
                    {AnalyzerKind::Threshold, 0.8},
                    {AnalyzerKind::Average, 0.01},
                    {AnalyzerKind::Average, 0.3},
                    {AnalyzerKind::Hysteresis, 0.6},
                    {AnalyzerKind::Hysteresis, 0.1}};
  Spec.Anchors = {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy};
  Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  return enumerateCrossProduct(Spec);
}

/// Exact per-trace statistics, so the certified intervals are as tight
/// as the certifier can make them — the hardest version of the claim.
TraceBounds exactStats(const BranchTrace &Trace) {
  TraceBounds Stats;
  Stats.TraceLen = Trace.size();
  Stats.NumSites = Trace.numSites();
  std::vector<uint64_t> Mult(Trace.numSites(), 0);
  for (uint64_t I = 0; I != Trace.size(); ++I)
    ++Mult[Trace[I]];
  Stats.MaxMultiplicity =
      Mult.empty() ? 0 : *std::max_element(Mult.begin(), Mult.end());
  return Stats;
}

void expectObservationsWithin(const KernelValueProbe &Probe,
                              const KernelCertificate &Cert,
                              const DetectorConfig &Config,
                              const char *Path) {
  EXPECT_EQ(Probe.totalOverflows(), 0u)
      << Path << " " << Config.describe();
  for (size_t Q = 0; Q != NumKernelQuantities; ++Q) {
    KernelQuantity Quantity = static_cast<KernelQuantity>(Q);
    uint64_t Observed = Probe.observedMax(Quantity);
    const QuantityBound &Bound = Cert.Bounds[Q];
    if (!Bound.Applicable) {
      EXPECT_EQ(Observed, 0u)
          << Path << " " << Config.describe() << ": inapplicable quantity "
          << kernelQuantityName(Quantity) << " was computed";
      continue;
    }
    ASSERT_TRUE(Bound.Bounded)
        << Path << " " << Config.describe() << ": "
        << kernelQuantityName(Quantity)
        << " unbounded despite exact trace stats";
    EXPECT_LE(Observed, Bound.Max)
        << Path << " " << Config.describe() << ": observed "
        << kernelQuantityName(Quantity) << " above its certified bound";
  }
}

} // namespace

TEST(KernelBoundsTest, ShadowRunStaysWithinCertifiedBounds) {
  const BenchmarkData &B = testBenchmark();
  TraceBounds Stats = exactStats(B.Trace);
  std::vector<DetectorConfig> Configs = differentialConfigs();
  ASSERT_GT(Configs.size(), 500u);

  for (const DetectorConfig &Config : Configs) {
    KernelCertificate Cert = certifyKernel(Config, Stats);
    EXPECT_TRUE(Cert.NoWraparound) << Config.describe();

    KernelValueProbe ReferenceProbe;
    std::unique_ptr<PhaseDetector> Reference =
        makeCheckedDetector(Config, B.Trace.numSites(), ReferenceProbe);
    runDetector(*Reference, B.Trace);
    expectObservationsWithin(ReferenceProbe, Cert, Config, "reference");

    KernelValueProbe FastProbe;
    std::unique_ptr<FastDetectorBase> Fast =
        makeCheckedFastDetector(Config, B.Trace.numSites(), FastProbe);
    runDetector(*Fast, B.Trace);
    expectObservationsWithin(FastProbe, Cert, Config, "fast");
  }
}

TEST(KernelBoundsTest, ShadowDetectorsMatchPlainDetectors) {
  // The instrumentation must be an observer, not a fork: checked and
  // plain detectors produce identical output on a weighted config that
  // exercises the delta paths.
  const BenchmarkData &B = testBenchmark();
  DetectorConfig Config =
      makeConfig(ModelKind::WeightedSet, TWPolicyKind::Adaptive,
                 AnalyzerKind::Threshold, 400, 400, 0.6);
  KernelValueProbe Probe;
  std::unique_ptr<PhaseDetector> Plain =
      makeDetector(Config, B.Trace.numSites());
  std::unique_ptr<PhaseDetector> Checked =
      makeCheckedDetector(Config, B.Trace.numSites(), Probe);
  DetectorRun PlainRun = runDetector(*Plain, B.Trace);
  DetectorRun CheckedRun = runDetector(*Checked, B.Trace);
  ASSERT_EQ(PlainRun.States.runs().size(), CheckedRun.States.runs().size());
  EXPECT_EQ(PlainRun.DetectedPhases, CheckedRun.DetectedPhases);
  EXPECT_EQ(PlainRun.AnchoredPhases, CheckedRun.AnchoredPhases);
  // And the probe actually saw the kernel work.
  EXPECT_GT(Probe.observedMax(KernelQuantity::MinSum), 0u);
  EXPECT_EQ(Probe.totalOverflows(), 0u);
}
