//===- tests/MonitorTest.cpp - PhaseMonitor + stability + matrix tests --------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/DetectorRunner.h"
#include "core/PhaseMonitor.h"
#include "metrics/Stability.h"
#include "support/Random.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

DetectorConfig monitorConfig(uint32_t CW = 200, uint32_t Skip = 1) {
  DetectorConfig C;
  C.Window.CWSize = CW;
  C.Window.TWSize = CW;
  C.Window.SkipFactor = Skip;
  C.Window.TWPolicy = TWPolicyKind::Adaptive;
  C.Model = ModelKind::UnweightedSet;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  return C;
}

SyntheticTrace abTrace(unsigned Phases = 4, uint64_t PhaseLen = 4000,
                       uint64_t TransLen = 1500) {
  SyntheticSpec Spec;
  Spec.NumPhases = Phases;
  Spec.NumBehaviors = 2;
  Spec.PhaseLength = PhaseLen;
  Spec.TransitionLength = TransLen;
  Spec.NoiseProbability = 0.05;
  Spec.Seed = 17;
  return generateSynthetic(Spec);
}

} // namespace

//===----------------------------------------------------------------------===//
// PhaseMonitor
//===----------------------------------------------------------------------===//

TEST(PhaseMonitorTest, FiresBalancedStartEndEvents) {
  SyntheticTrace T = abTrace();
  PhaseMonitor Monitor(monitorConfig(), T.Trace.numSites());
  unsigned Starts = 0, Ends = 0;
  uint64_t LastEnd = 0;
  Monitor.onPhaseStart([&](const PhaseStartEvent &E) {
    ++Starts;
    EXPECT_LE(E.EstimatedStart, E.DetectedAt);
    EXPECT_GE(E.Confidence, 0.0);
    EXPECT_LE(E.Confidence, 1.0);
  });
  Monitor.onPhaseEnd([&](const PhaseEndEvent &E) {
    ++Ends;
    EXPECT_LT(E.Start, E.End);
    EXPECT_LE(LastEnd, E.Start);
    LastEnd = E.End;
  });
  Monitor.addElements(T.Trace.elements().data(), T.Trace.size());
  Monitor.finish();
  EXPECT_EQ(Starts, Ends);
  EXPECT_GE(Starts, 3u); // four planted phases, detection may merge some
  EXPECT_EQ(Monitor.consumed(), T.Trace.size());
}

TEST(PhaseMonitorTest, RecurrenceReportedOnRepeatedBehavior) {
  SyntheticTrace T = abTrace(6);
  PhaseMonitor Monitor(monitorConfig(), T.Trace.numSites());
  unsigned Recurrences = 0, Total = 0;
  Monitor.onPhaseEnd([&](const PhaseEndEvent &E) {
    ++Total;
    Recurrences += E.Recurrence ? 1 : 0;
  });
  Monitor.addElements(T.Trace.elements().data(), T.Trace.size());
  Monitor.finish();
  EXPECT_GE(Total, 4u);
  EXPECT_GE(Recurrences, 2u); // 2 behaviors cycling -> later phases recur
  EXPECT_LE(Monitor.numDistinctPhases(), 4u);
}

TEST(PhaseMonitorTest, EventsMatchDetectorRunBoundaries) {
  // The monitor must report exactly the phases a plain DetectorRun sees.
  SyntheticTrace T = abTrace();
  DetectorConfig C = monitorConfig();
  std::unique_ptr<PhaseDetector> D = makeDetector(C, T.Trace.numSites());
  DetectorRun Run = runDetector(*D, T.Trace);

  PhaseMonitor Monitor(C, T.Trace.numSites());
  std::vector<PhaseInterval> Observed;
  Monitor.onPhaseEnd([&](const PhaseEndEvent &E) {
    Observed.push_back({E.Start, E.End});
  });
  Monitor.addElements(T.Trace.elements().data(), T.Trace.size());
  Monitor.finish();
  ASSERT_EQ(Observed.size(), Run.DetectedPhases.size());
  for (size_t I = 0; I != Observed.size(); ++I)
    EXPECT_EQ(Observed[I], Run.DetectedPhases[I]);
}

TEST(PhaseMonitorTest, ChunkedFeedingMatchesBulk) {
  SyntheticTrace T = abTrace();
  DetectorConfig C = monitorConfig(200, /*Skip=*/7);
  auto runChunked = [&](size_t Chunk) {
    PhaseMonitor Monitor(C, T.Trace.numSites());
    std::vector<PhaseInterval> Phases;
    Monitor.onPhaseEnd([&](const PhaseEndEvent &E) {
      Phases.push_back({E.Start, E.End});
    });
    const std::vector<SiteIndex> &E = T.Trace.elements();
    for (size_t I = 0; I < E.size(); I += Chunk)
      Monitor.addElements(E.data() + I, std::min(Chunk, E.size() - I));
    Monitor.finish();
    return Phases;
  };
  std::vector<PhaseInterval> Bulk = runChunked(T.Trace.size());
  std::vector<PhaseInterval> Tiny = runChunked(3);
  EXPECT_EQ(Bulk, Tiny);
}

TEST(PhaseMonitorTest, PhaseLengthStatsAccumulate) {
  SyntheticTrace T = abTrace();
  PhaseMonitor Monitor(monitorConfig(), T.Trace.numSites());
  Monitor.addElements(T.Trace.elements().data(), T.Trace.size());
  Monitor.finish();
  ASSERT_GT(Monitor.phaseLengths().count(), 0u);
  EXPECT_GT(Monitor.phaseLengths().mean(), 1000.0);
}

TEST(PhaseMonitorTest, NoCallbacksIsFine) {
  SyntheticTrace T = abTrace(2, 2000, 500);
  PhaseMonitor Monitor(monitorConfig(), T.Trace.numSites());
  Monitor.addElements(T.Trace.elements().data(), T.Trace.size());
  Monitor.finish(); // must not crash without callbacks
  EXPECT_EQ(Monitor.consumed(), T.Trace.size());
}

//===----------------------------------------------------------------------===//
// Stability statistics
//===----------------------------------------------------------------------===//

TEST(StabilityTest, EmptySequence) {
  StabilityStats S = computeStability(StateSequence());
  EXPECT_DOUBLE_EQ(S.InPhaseFraction, 0.0);
  EXPECT_EQ(S.NumPhases, 0u);
}

TEST(StabilityTest, CountsRunsAndChanges) {
  StateSequence Seq;
  Seq.append(PhaseState::Transition, 100);
  Seq.append(PhaseState::InPhase, 300);
  Seq.append(PhaseState::Transition, 100);
  Seq.append(PhaseState::InPhase, 500);
  StabilityStats S = computeStability(Seq);
  EXPECT_DOUBLE_EQ(S.InPhaseFraction, 0.8);
  EXPECT_EQ(S.NumPhases, 2u);
  EXPECT_DOUBLE_EQ(S.PhaseLengths.mean(), 400.0);
  EXPECT_DOUBLE_EQ(S.GapLengths.mean(), 100.0);
  EXPECT_DOUBLE_EQ(S.ChangesPerMillion, 3.0 / 1000.0 * 1e6);
}

TEST(StabilityTest, AlwaysPHasNoChanges) {
  StateSequence Seq;
  Seq.append(PhaseState::InPhase, 1000);
  StabilityStats S = computeStability(Seq);
  EXPECT_DOUBLE_EQ(S.InPhaseFraction, 1.0);
  EXPECT_DOUBLE_EQ(S.ChangesPerMillion, 0.0);
  EXPECT_EQ(S.NumPhases, 1u);
}

//===----------------------------------------------------------------------===//
// Full policy-matrix property sweep (parameterized)
//===----------------------------------------------------------------------===//

using MatrixParam =
    std::tuple<ModelKind, TWPolicyKind, AnalyzerKind, uint32_t>;

class DetectorMatrixTest : public testing::TestWithParam<MatrixParam> {};

TEST_P(DetectorMatrixTest, InvariantsHoldAcrossTheWholeMatrix) {
  auto [Model, Policy, Analyzer, Skip] = GetParam();
  SyntheticTrace T = abTrace(3, 3000, 1000);

  DetectorConfig C;
  C.Window.CWSize = 150;
  C.Window.TWSize = 150;
  C.Window.SkipFactor = Skip;
  C.Window.TWPolicy = Policy;
  C.Model = Model;
  C.TheAnalyzer = Analyzer;
  C.AnalyzerParam = Analyzer == AnalyzerKind::Average ? 0.05 : 0.6;

  std::unique_ptr<PhaseDetector> D = makeDetector(C, T.Trace.numSites());
  DetectorRun Run = runDetector(*D, T.Trace);

  // Output covers the trace exactly.
  ASSERT_EQ(Run.States.size(), T.Trace.size());
  // Phases sorted, disjoint, nonempty; anchors never after starts.
  ASSERT_EQ(Run.AnchoredPhases.size(), Run.DetectedPhases.size());
  uint64_t PrevEnd = 0;
  for (size_t I = 0; I != Run.DetectedPhases.size(); ++I) {
    const PhaseInterval &P = Run.DetectedPhases[I];
    ASSERT_LE(PrevEnd, P.Begin);
    ASSERT_LT(P.Begin, P.End);
    ASSERT_LE(Run.AnchoredPhases[I].Begin, P.Begin);
    PrevEnd = P.End;
  }
  // States before the windows can fill are all T.
  uint64_t FillSpan = 2 * 150;
  for (const PhaseInterval &P : Run.DetectedPhases)
    ASSERT_GE(P.Begin, FillSpan - Skip > 0 ? FillSpan - Skip : 0);
  // Re-running is deterministic.
  std::unique_ptr<PhaseDetector> D2 = makeDetector(C, T.Trace.numSites());
  DetectorRun Run2 = runDetector(*D2, T.Trace);
  ASSERT_EQ(Run.DetectedPhases.size(), Run2.DetectedPhases.size());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DetectorMatrixTest,
    testing::Combine(
        testing::Values(ModelKind::UnweightedSet, ModelKind::WeightedSet,
                        ModelKind::ManhattanBBV),
        testing::Values(TWPolicyKind::Constant, TWPolicyKind::Adaptive),
        testing::Values(AnalyzerKind::Threshold, AnalyzerKind::Average,
                        AnalyzerKind::Hysteresis),
        testing::Values(1u, 13u, 150u)));
