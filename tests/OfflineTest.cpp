//===- tests/OfflineTest.cpp - Offline clustering tests ------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/OfflineClustering.h"
#include "metrics/Scoring.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

#include <set>

using namespace opd;

namespace {

SyntheticTrace makeCleanTrace(unsigned Phases, unsigned Behaviors,
                              uint64_t PhaseLen, uint64_t Seed = 7) {
  SyntheticSpec Spec;
  Spec.NumPhases = Phases;
  Spec.NumBehaviors = Behaviors;
  Spec.PhaseLength = PhaseLen;
  Spec.TransitionLength = 0;
  Spec.NoiseProbability = 0.0;
  Spec.Seed = Seed;
  return generateSynthetic(Spec);
}

} // namespace

TEST(OfflineClusteringTest, RecoversPlantedBehaviors) {
  // 6 phases cycling 2 behaviors, no noise, no transitions: clustering
  // with k=2 must label the phases in the alternating pattern. (With a
  // larger k, k-means is free to split a behavior's phases by sampling
  // variance — that over-segmentation is expected, not a bug.)
  SyntheticTrace T = makeCleanTrace(6, 2, 10000);
  OfflineClusteringOptions Options;
  Options.IntervalLength = 10000; // aligned with the phases
  Options.NumClusters = 2;
  OfflineClusteringResult R = clusterTrace(T.Trace, Options);
  ASSERT_EQ(R.IntervalLabels.size(), 6u);
  EXPECT_EQ(R.NumClusters, 2u);
  for (size_t I = 2; I != R.IntervalLabels.size(); ++I)
    EXPECT_EQ(R.IntervalLabels[I], R.IntervalLabels[I - 2]);
  EXPECT_NE(R.IntervalLabels[0], R.IntervalLabels[1]);
}

TEST(OfflineClusteringTest, PhasesAreMaximalLabelRuns) {
  SyntheticTrace T = makeCleanTrace(4, 2, 5000);
  OfflineClusteringOptions Options;
  Options.IntervalLength = 5000;
  Options.NumClusters = 2;
  OfflineClusteringResult R = clusterTrace(T.Trace, Options);
  ASSERT_EQ(R.Phases.size(), 4u);
  uint64_t PrevEnd = 0;
  for (const PhaseInterval &P : R.Phases) {
    EXPECT_EQ(P.Begin, PrevEnd); // abutting, covering everything
    PrevEnd = P.End;
  }
  EXPECT_EQ(PrevEnd, T.Trace.size());
}

TEST(OfflineClusteringTest, DeterministicForSeed) {
  SyntheticTrace T = makeCleanTrace(8, 3, 4000);
  OfflineClusteringOptions Options;
  Options.IntervalLength = 2000;
  Options.NumClusters = 5;
  OfflineClusteringResult A = clusterTrace(T.Trace, Options);
  OfflineClusteringResult B = clusterTrace(T.Trace, Options);
  EXPECT_EQ(A.IntervalLabels, B.IntervalLabels);
}

TEST(OfflineClusteringTest, KOneYieldsSinglePhase) {
  SyntheticTrace T = makeCleanTrace(4, 2, 3000);
  OfflineClusteringOptions Options;
  Options.IntervalLength = 1000;
  Options.NumClusters = 1;
  OfflineClusteringResult R = clusterTrace(T.Trace, Options);
  EXPECT_EQ(R.NumClusters, 1u);
  ASSERT_EQ(R.Phases.size(), 1u);
  EXPECT_EQ(R.Phases[0].length(), T.Trace.size());
}

TEST(OfflineClusteringTest, PartialFinalIntervalIncluded) {
  SyntheticTrace T = makeCleanTrace(1, 1, 2500);
  OfflineClusteringOptions Options;
  Options.IntervalLength = 1000;
  Options.NumClusters = 2;
  OfflineClusteringResult R = clusterTrace(T.Trace, Options);
  EXPECT_EQ(R.IntervalLabels.size(), 3u); // 1000 + 1000 + 500
  EXPECT_EQ(R.Phases.back().End, T.Trace.size());
}

TEST(OfflineClusteringTest, EmptyTrace) {
  BranchTrace Empty;
  OfflineClusteringResult R = clusterTrace(Empty, {});
  EXPECT_TRUE(R.IntervalLabels.empty());
  EXPECT_TRUE(R.Phases.empty());
  EXPECT_EQ(R.States.size(), 0u);
}

TEST(OfflineClusteringTest, MoreClustersThanIntervalsIsSafe) {
  SyntheticTrace T = makeCleanTrace(1, 1, 1500);
  OfflineClusteringOptions Options;
  Options.IntervalLength = 1000;
  Options.NumClusters = 16;
  OfflineClusteringResult R = clusterTrace(T.Trace, Options);
  EXPECT_LE(R.NumClusters, 2u);
}

TEST(OfflineClusteringTest, ScoresAgainstOracleStates) {
  // The offline pipeline's output plugs into the same scoring metric.
  SyntheticSpec Spec;
  Spec.NumPhases = 6;
  Spec.PhaseLength = 12000;
  Spec.TransitionLength = 3000;
  Spec.Seed = 5;
  SyntheticTrace T = generateSynthetic(Spec);
  OfflineClusteringOptions Options;
  Options.IntervalLength = 3000;
  Options.NumClusters = 6;
  OfflineClusteringResult R = clusterTrace(T.Trace, Options);
  AccuracyScore S = scoreDetection(R.Phases, T.Truth);
  EXPECT_GE(S.Score, 0.0);
  EXPECT_LE(S.Score, 1.0);
  // It is always in phase, so correlation is bounded by the truth's
  // in-phase fraction.
  double InPhaseFrac = static_cast<double>(T.Truth.numInPhase()) /
                       static_cast<double>(T.Truth.size());
  EXPECT_LE(S.Correlation, InPhaseFrac + 1e-9);
}
