//===- tests/BatchKernelTest.cpp - SoA batch kernel tests ---------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch kernel layer (core/BatchKernel.h) is only admissible
/// because every primitive is bit-identical across backends and because
/// a batch kernel refuses configurations its KernelBounds certificate
/// does not admit. This suite pins both claims: the min-sum sweep and
/// the anchor scans against naive oracles over block-remainder tails and
/// lane-saturating values on both backends, whole weighted detector runs
/// against the reference detector per backend (including mid-block
/// window flushes and the certificate-refused scalar path), and the
/// 18-shape lane-plan admission table against the certifier.
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelBounds.h"
#include "core/BatchKernel.h"
#include "core/DetectorRunner.h"
#include "core/FastDetector.h"
#include "harness/Experiment.h"
#include "harness/Sweep.h"

#include <gtest/gtest.h>

#include <random>

using namespace opd;

namespace {

/// Restores the dispatch backend a test pinned (the slot is process
/// state; leaking a forced backend would silently change what every
/// later test exercises).
class BackendGuard {
  BatchBackend Saved;

public:
  BackendGuard() : Saved(activeBatchBackend()) {}
  ~BackendGuard() { setBatchBackend(Saved); }
};

/// The backends this host can actually run (Portable always; AVX2 when
/// compiled in and supported).
std::vector<BatchBackend> runnableBackends() {
  std::vector<BatchBackend> B{BatchBackend::Portable};
  if (simdAvailable())
    B.push_back(BatchBackend::AVX2);
  return B;
}

/// Naive mod-2^64 oracle for batchMinSum over interleaved (cw, tw)
/// pairs.
uint64_t naiveMinSum(const std::vector<uint32_t> &Pairs, uint64_t NCW,
                     uint64_t NTW) {
  uint64_t Sum = 0;
  for (size_t I = 0; I * 2 + 1 < Pairs.size(); ++I)
    Sum += std::min(Pairs[2 * I] * NTW, Pairs[2 * I + 1] * NCW);
  return Sum;
}

/// One small-scale workload shared by the differential tests.
const BenchmarkData &testBenchmark() {
  static const std::vector<BenchmarkData> Data =
      prepareBenchmarks({"jess"}, {1000, 10000}, /*Scale=*/0.1);
  return Data.front();
}

/// Weighted-model configurations exercising the batch-kernel paths:
/// adaptive growth (the per-element recompute), both anchors and
/// resizes (the blocked scans via the constant-policy dense kernels are
/// covered by the unweighted config), and window sizes that are not
/// multiples of the 8-wide blocks so flushes land mid-block and the
/// sweep always has a remainder tail.
std::vector<DetectorConfig> batchConfigs() {
  SweepSpec Spec;
  Spec.CWSizes = {37, 64, 400};
  Spec.TWFactors = {1, 2};
  Spec.SkipFactors = {1, 10};
  Spec.Models = {ModelKind::WeightedSet, ModelKind::UnweightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.5},
                    {AnalyzerKind::Threshold, 0.8},
                    {AnalyzerKind::Average, 0.01},
                    {AnalyzerKind::Hysteresis, 0.6}};
  Spec.Anchors = {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy};
  Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  return enumerateCrossProduct(Spec);
}

void expectRunsEqual(const DetectorRun &Reference, const DetectorRun &Fast,
                     const DetectorConfig &Config, const char *Tag) {
  std::string Desc = Config.describe() + " [" + Tag + "]";
  ASSERT_EQ(Reference.States.size(), Fast.States.size()) << Desc;
  const std::vector<StateRun> &RR = Reference.States.runs();
  const std::vector<StateRun> &FR = Fast.States.runs();
  ASSERT_EQ(RR.size(), FR.size()) << Desc;
  for (size_t I = 0; I != RR.size(); ++I) {
    ASSERT_EQ(RR[I].Begin, FR[I].Begin) << Desc << " run " << I;
    ASSERT_EQ(RR[I].Length, FR[I].Length) << Desc << " run " << I;
    ASSERT_EQ(RR[I].State, FR[I].State) << Desc << " run " << I;
  }
  ASSERT_EQ(Reference.DetectedPhases, Fast.DetectedPhases) << Desc;
  ASSERT_EQ(Reference.AnchoredPhases, Fast.AnchoredPhases) << Desc;
}

/// The shape with index \p S (the inverse of fastShapeIndex), with
/// window parameters that certify cleanly under a bounded trace.
DetectorConfig shapeConfig(size_t S) {
  DetectorConfig C;
  C.TheAnalyzer = static_cast<AnalyzerKind>(S % 3);
  C.Window.TWPolicy = static_cast<TWPolicyKind>((S / 3) % 2);
  C.Model = static_cast<ModelKind>(S / 6);
  C.Window.CWSize = 100;
  C.Window.TWSize = 100;
  C.Window.SkipFactor = 1;
  C.AnalyzerParam = 0.5;
  return C;
}

} // namespace

TEST(BatchKernelBackendTest, EnvOverrideOnlyForcesThePortableFallback) {
  for (BatchBackend Detected :
       {BatchBackend::Portable, BatchBackend::AVX2}) {
    // The documented fallback spellings force Portable...
    for (const char *Off : {"off", "portable", "0", "scalar"})
      EXPECT_EQ(batchBackendFromEnv(Off, Detected), BatchBackend::Portable)
          << Off;
    // ...and nothing can enable lanes the hardware detection did not:
    // unset/empty/"on"/garbage all keep the detected backend.
    EXPECT_EQ(batchBackendFromEnv(nullptr, Detected), Detected);
    EXPECT_EQ(batchBackendFromEnv("", Detected), Detected);
    EXPECT_EQ(batchBackendFromEnv("on", Detected), Detected);
    EXPECT_EQ(batchBackendFromEnv("avx2", Detected), Detected);
    EXPECT_EQ(batchBackendFromEnv("bogus", Detected), Detected);
  }
}

TEST(BatchKernelBackendTest, SetBackendIsBoundedByAvailability) {
  BackendGuard Guard;
  EXPECT_TRUE(setBatchBackend(BatchBackend::Portable));
  EXPECT_EQ(activeBatchBackend(), BatchBackend::Portable);
  bool Enabled = setBatchBackend(BatchBackend::AVX2);
  EXPECT_EQ(Enabled, simdAvailable());
  // A refused request must leave the process on the fallback, not on a
  // backend the host cannot execute.
  EXPECT_EQ(activeBatchBackend(),
            Enabled ? BatchBackend::AVX2 : BatchBackend::Portable);
  if (!simdCompiledIn()) {
    EXPECT_FALSE(simdAvailable());
  }
}

TEST(BatchKernelMinSumTest, MatchesNaiveAcrossTailSizesOnEveryBackend) {
  BackendGuard Guard;
  std::mt19937 Rng(7);
  std::uniform_int_distribution<uint32_t> Count(0, 5000);
  // Sizes straddling the 8-wide unrolled blocks, the 4-wide sign-flip
  // blocks, and their remainder tails.
  for (size_t N : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 31u, 64u,
                   100u, 1000u}) {
    std::vector<uint32_t> Pairs(2 * N);
    for (uint32_t &P : Pairs)
      P = Count(Rng);
    for (uint64_t NCW : {0ull, 1ull, 4999ull, 1000000ull})
      for (uint64_t NTW : {0ull, 3ull, 5001ull}) {
        uint64_t Expected = naiveMinSum(Pairs, NCW, NTW);
        ASSERT_EQ(batchMinSumPortable(Pairs.data(), N, NCW, NTW), Expected);
        for (BatchBackend B : runnableBackends()) {
          ASSERT_TRUE(setBatchBackend(B));
          ASSERT_EQ(batchMinSum(Pairs.data(), N, NCW, NTW), Expected)
              << "N=" << N << " backend=" << batchBackendName(B);
        }
      }
  }
}

TEST(BatchKernelMinSumTest, LaneSaturatingValuesStayExact) {
  BackendGuard Guard;
  // Counts at the uint32_t lane limit with totals just under the 2^32
  // dispatch guard: every product approaches 2^64 (so the sign-flip
  // unsigned-compare path runs) and the sum wraps mod 2^64 — which both
  // backends must do identically, since mod-2^64 addition commutes.
  const uint64_t Total = (1ull << 32) - 1;
  std::vector<uint32_t> Pairs(2 * 21);
  for (size_t I = 0; I != 21; ++I) {
    Pairs[2 * I] = UINT32_MAX - static_cast<uint32_t>(I);
    Pairs[2 * I + 1] = static_cast<uint32_t>(I * 97 + 1);
  }
  uint64_t Expected = naiveMinSum(Pairs, Total, Total - 2);
  for (BatchBackend B : runnableBackends()) {
    ASSERT_TRUE(setBatchBackend(B));
    ASSERT_EQ(batchMinSum(Pairs.data(), 21, Total, Total - 2), Expected)
        << batchBackendName(B);
  }
}

TEST(BatchKernelMinSumTest, TotalsBeyondTheLaneGuardTakeThePortablePath) {
  BackendGuard Guard;
  // Totals at or above 2^32 cannot use the 32x32->64 lane multiply; the
  // dispatcher must fall back so results still match the wrapping
  // scalar loop bit for bit.
  const uint64_t Wide = (1ull << 32) + 12345;
  std::vector<uint32_t> Pairs = {7, 11, 100000, 3, UINT32_MAX, 1, 0, 42,
                                 13, 13};
  uint64_t Expected = naiveMinSum(Pairs, Wide, 999);
  uint64_t Expected2 = naiveMinSum(Pairs, 999, Wide);
  for (BatchBackend B : runnableBackends()) {
    ASSERT_TRUE(setBatchBackend(B));
    ASSERT_EQ(batchMinSum(Pairs.data(), 5, Wide, 999), Expected);
    ASSERT_EQ(batchMinSum(Pairs.data(), 5, 999, Wide), Expected2);
  }
}

TEST(BatchKernelAnchorTest, ScansMatchTheOracleOnEveryBackend) {
  BackendGuard Guard;
  // A small site table with a mix of zero and nonzero counts, scanned
  // through windows of every length up to several blocks, with the
  // zero-count element planted at every offset (plus all-zero and
  // all-nonzero windows).
  std::vector<uint32_t> Counts(32);
  for (size_t S = 0; S != Counts.size(); ++S)
    Counts[S] = S % 2 ? static_cast<uint32_t>(S) : 0;
  std::mt19937 Rng(11);
  for (uint64_t N : {0u, 1u, 2u, 7u, 8u, 9u, 16u, 23u, 40u}) {
    for (int Pattern = 0; Pattern != 4; ++Pattern) {
      std::vector<SiteIndex> Elements(N);
      for (uint64_t I = 0; I != N; ++I) {
        switch (Pattern) {
        case 0: // all noisy (zero-count sites)
          Elements[I] = static_cast<SiteIndex>((I * 2) % 32);
          break;
        case 1: // none noisy
          Elements[I] = static_cast<SiteIndex>((I * 2 + 1) % 32);
          break;
        default: // random mix
          Elements[I] = static_cast<SiteIndex>(Rng() % 32);
        }
      }
      uint64_t Right =
          batchRightmostNoisyPortable(Counts.data(), Elements.data(), N);
      uint64_t Left =
          batchLeftmostNonNoisyPortable(Counts.data(), Elements.data(), N);
      for (BatchBackend B : runnableBackends()) {
        ASSERT_TRUE(setBatchBackend(B));
        ASSERT_EQ(batchRightmostNoisy(Counts.data(), Elements.data(), N),
                  Right)
            << "N=" << N << " pattern=" << Pattern << " backend="
            << batchBackendName(B);
        ASSERT_EQ(batchLeftmostNonNoisy(Counts.data(), Elements.data(), N),
                  Left)
            << "N=" << N << " pattern=" << Pattern << " backend="
            << batchBackendName(B);
      }
    }
  }
  // The planted single-zero sweep: rightmost must report exactly 1 +
  // the plant position, leftmost exactly the first odd (nonzero) site.
  for (uint64_t N : {9u, 17u}) {
    for (uint64_t Plant = 0; Plant != N; ++Plant) {
      std::vector<SiteIndex> Elements(N, 1); // site 1: nonzero count
      Elements[Plant] = 0;                   // site 0: zero count
      for (BatchBackend B : runnableBackends()) {
        ASSERT_TRUE(setBatchBackend(B));
        ASSERT_EQ(batchRightmostNoisy(Counts.data(), Elements.data(), N),
                  Plant + 1);
        ASSERT_EQ(batchLeftmostNonNoisy(Counts.data(), Elements.data(), N),
                  Plant == 0 ? 1u : 0u);
      }
    }
  }
}

// The load-bearing differential: whole weighted/unweighted detector runs
// — including mid-block window flushes, resizes, and anchor scans — are
// bit-identical to the reference detector on every runnable backend.
TEST(BatchKernelDifferentialTest, DetectorRunsBitIdenticalPerBackend) {
  BackendGuard Guard;
  const BenchmarkData &Bench = testBenchmark();
  for (const DetectorConfig &Config : batchConfigs()) {
    std::unique_ptr<PhaseDetector> Reference =
        makeDetector(Config, Bench.Trace.numSites());
    DetectorRun ReferenceRun = runDetector(*Reference, Bench.Trace);
    for (BatchBackend B : runnableBackends()) {
      ASSERT_TRUE(setBatchBackend(B));
      std::unique_ptr<FastDetectorBase> Fast =
          makeFastDetector(Config, Bench.Trace.numSites());
      ASSERT_TRUE(Fast->batchKernelsEnabled());
      DetectorRun FastRun = runDetector(*Fast, Bench.Trace);
      expectRunsEqual(ReferenceRun, FastRun, Config, batchBackendName(B));
    }
  }
}

// A certificate-refused config runs the scalar paths and must still be
// bit-identical (refusal is the admission gate, not a behavioral fork);
// the flag must also survive reconfigure().
TEST(BatchKernelDifferentialTest, RefusedConfigsTakeTheScalarPathsExactly) {
  BackendGuard Guard;
  const BenchmarkData &Bench = testBenchmark();
  std::vector<DetectorConfig> Configs = batchConfigs();
  for (size_t I = 0; I < Configs.size(); I += 7) {
    const DetectorConfig &Config = Configs[I];
    std::unique_ptr<PhaseDetector> Reference =
        makeDetector(Config, Bench.Trace.numSites());
    DetectorRun ReferenceRun = runDetector(*Reference, Bench.Trace);
    std::unique_ptr<FastDetectorBase> Fast =
        makeFastDetector(Config, Bench.Trace.numSites());
    Fast->setBatchKernels(false);
    ASSERT_FALSE(Fast->batchKernelsEnabled());
    DetectorRun FastRun = runDetector(*Fast, Bench.Trace);
    expectRunsEqual(ReferenceRun, FastRun, Config, "refused");
    Fast->reconfigure(Config);
    EXPECT_FALSE(Fast->batchKernelsEnabled())
        << "the admission verdict must survive reconfigure()";
    Fast->setBatchKernels(true);
    Fast->reconfigure(Config);
    EXPECT_TRUE(Fast->batchKernelsEnabled());
  }
}

TEST(BatchKernelLanePlanTest, CompiledPlansPerModel) {
  BatchLanePlan Weighted = batchLanePlan(ModelKind::WeightedSet);
  EXPECT_EQ(Weighted.CountLaneBits, 32u);
  EXPECT_EQ(Weighted.ProductLaneBits, 64u);
  for (ModelKind M : {ModelKind::UnweightedSet, ModelKind::ManhattanBBV}) {
    BatchLanePlan Plan = batchLanePlan(M);
    EXPECT_EQ(Plan.CountLaneBits, 32u);
    EXPECT_EQ(Plan.ProductLaneBits, 0u);
  }
}

// All 18 monomorphic shapes against the admission logic kernel_check's
// --lane-plan table prints: a bounded trace certifies every shape into
// the compiled plans; an unbounded trace leaves every adaptive shape's
// TW-dependent quantities uncertified, which must refuse.
TEST(BatchKernelLanePlanTest, EighteenShapesMatchTheCertifierVerdict) {
  TraceBounds Bounded;
  Bounded.TraceLen = 2000000;
  for (size_t S = 0; S != NumFastShapes; ++S) {
    DetectorConfig C = shapeConfig(S);
    ASSERT_EQ(fastShapeIndex(C), S);

    KernelCertificate Cert = certifyKernel(C, Bounded);
    EXPECT_TRUE(Cert.NoWraparound) << C.describe();
    EXPECT_TRUE(admitsBatchLanes(Cert)) << C.describe();
    BatchLanePlan Plan = batchLanePlan(C.Model);
    EXPECT_LE(Cert.CountLaneBits, Plan.CountLaneBits) << C.describe();
    if (Plan.ProductLaneBits != 0) {
      EXPECT_LE(Cert.ProductLaneBits, Plan.ProductLaneBits) << C.describe();
    }

    KernelCertificate Unbounded = certifyKernel(C, TraceBounds());
    bool Adaptive = C.Window.TWPolicy == TWPolicyKind::Adaptive;
    EXPECT_EQ(admitsBatchLanes(Unbounded), !Adaptive)
        << C.describe() << ": adaptive TW growth without a trace bound "
        << "cannot certify the count lanes";
  }
}
