//===- tests/CoreModelTest.cpp - WindowedModel mechanics tests ----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/WindowedModel.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

WindowConfig makeConfig(uint32_t CW, uint32_t TW,
                        TWPolicyKind Policy = TWPolicyKind::Constant,
                        AnchorKind Anchor = AnchorKind::RightmostNoisy,
                        ResizeKind Resize = ResizeKind::Slide,
                        uint32_t Skip = 1) {
  WindowConfig C;
  C.CWSize = CW;
  C.TWSize = TW;
  C.SkipFactor = Skip;
  C.TWPolicy = Policy;
  C.Anchor = Anchor;
  C.Resize = Resize;
  return C;
}

void consumeAll(WindowedModel &M, std::initializer_list<SiteIndex> Elems) {
  for (SiteIndex S : Elems)
    M.consume(S);
}

void consumeN(WindowedModel &M, SiteIndex S, unsigned N) {
  for (unsigned I = 0; I != N; ++I)
    M.consume(S);
}

} // namespace

//===----------------------------------------------------------------------===//
// Filling
//===----------------------------------------------------------------------===//

TEST(WindowedModelTest, WindowsFillCWFirstThenTW) {
  WindowedModel M(makeConfig(3, 4), ModelKind::UnweightedSet, 2);
  for (unsigned I = 0; I != 3; ++I) {
    EXPECT_FALSE(M.windowsFull());
    M.consume(0);
  }
  EXPECT_EQ(M.cwLength(), 3u);
  EXPECT_EQ(M.twLength(), 0u);
  for (unsigned I = 0; I != 4; ++I) {
    EXPECT_FALSE(M.windowsFull());
    M.consume(0);
  }
  EXPECT_TRUE(M.windowsFull());
  EXPECT_EQ(M.cwLength(), 3u);
  EXPECT_EQ(M.twLength(), 4u);
}

TEST(WindowedModelTest, ConstantTWHoldsSizesInSteadyState) {
  WindowedModel M(makeConfig(4, 4), ModelKind::UnweightedSet, 3);
  Xoshiro256 Rng(5);
  for (unsigned I = 0; I != 500; ++I)
    M.consume(static_cast<SiteIndex>(Rng.nextBelow(3)));
  EXPECT_EQ(M.cwLength(), 4u);
  EXPECT_EQ(M.twLength(), 4u);
  EXPECT_EQ(M.kernel().cwTotal(), 4u);
  EXPECT_EQ(M.kernel().twTotal(), 4u);
}

TEST(WindowedModelTest, WindowContentsAreTheRecentElements) {
  // CW=2, TW=2: after consuming a,b,c,d the TW is {a,b} and CW {c,d}.
  WindowedModel M(makeConfig(2, 2), ModelKind::UnweightedSet, 4);
  consumeAll(M, {0, 1, 2, 3});
  EXPECT_TRUE(M.windowsFull());
  // CW contains exactly sites 2 and 3.
  EXPECT_TRUE(M.kernel().inCW(2));
  EXPECT_TRUE(M.kernel().inCW(3));
  EXPECT_FALSE(M.kernel().inCW(0));
  EXPECT_FALSE(M.kernel().inCW(1));
  // Disjoint windows: unweighted similarity 0.
  EXPECT_DOUBLE_EQ(M.similarity(), 0.0);
}

TEST(WindowedModelTest, UniformStreamSimilarityIsOne) {
  WindowedModel M(makeConfig(10, 10), ModelKind::UnweightedSet, 1);
  consumeN(M, 0, 200);
  EXPECT_TRUE(M.windowsFull());
  EXPECT_DOUBLE_EQ(M.similarity(), 1.0);
}

//===----------------------------------------------------------------------===//
// Phase end (flush)
//===----------------------------------------------------------------------===//

TEST(WindowedModelTest, EndPhaseKeepsSkipFactorSeed) {
  WindowConfig C = makeConfig(5, 5);
  C.SkipFactor = 2;
  WindowedModel M(C, ModelKind::UnweightedSet, 3);
  consumeN(M, 1, 20);
  M.startPhase();
  M.endPhase();
  EXPECT_EQ(M.cwLength(), 2u); // skipFactor elements survive as CW seed
  EXPECT_EQ(M.twLength(), 0u);
  EXPECT_FALSE(M.windowsFull());
  EXPECT_EQ(M.kernel().cwTotal(), 2u);
  EXPECT_EQ(M.kernel().twTotal(), 0u);
}

TEST(WindowedModelTest, RefillsAfterFlush) {
  WindowedModel M(makeConfig(3, 3), ModelKind::UnweightedSet, 2);
  consumeN(M, 0, 10);
  M.startPhase();
  M.endPhase();
  // Needs CW (2 more after the seed of 1) + TW (3) elements to refill.
  unsigned Steps = 0;
  while (!M.windowsFull()) {
    M.consume(1);
    ++Steps;
  }
  EXPECT_EQ(Steps, 5u);
}

//===----------------------------------------------------------------------===//
// Anchoring (paper example: TW = {a,b,c}, CW = {a,a,c}; b is noisy)
//===----------------------------------------------------------------------===//

TEST(WindowedModelTest, AnchorRightmostNoisy) {
  WindowedModel M(makeConfig(3, 3, TWPolicyKind::Adaptive,
                             AnchorKind::RightmostNoisy),
                  ModelKind::UnweightedSet, 3);
  // Feed a,b,c then a,a,c: TW = [a,b,c], CW = [a,a,c].
  consumeAll(M, {0, 1, 2, 0, 0, 2});
  // b (index 1) is the rightmost noisy element; RN anchors one right of
  // it: TW index 2, global offset 2.
  EXPECT_EQ(M.computeAnchorOffset(), 2u);
}

TEST(WindowedModelTest, AnchorLeftmostNonNoisy) {
  WindowedModel M(makeConfig(3, 3, TWPolicyKind::Adaptive,
                             AnchorKind::LeftmostNonNoisy),
                  ModelKind::UnweightedSet, 3);
  consumeAll(M, {0, 1, 2, 0, 0, 2});
  // a (TW index 0) is the leftmost element present in the CW.
  EXPECT_EQ(M.computeAnchorOffset(), 0u);
}

TEST(WindowedModelTest, AnchorRNWithNoNoiseIsTWStart) {
  WindowedModel M(makeConfig(2, 2, TWPolicyKind::Adaptive,
                             AnchorKind::RightmostNoisy),
                  ModelKind::UnweightedSet, 2);
  consumeAll(M, {0, 1, 0, 1}); // TW = [a,b], CW = [a,b]: nothing noisy
  EXPECT_EQ(M.computeAnchorOffset(), 0u);
}

TEST(WindowedModelTest, AnchorLNNAllNoisyIsTWEnd) {
  WindowedModel M(makeConfig(2, 2, TWPolicyKind::Adaptive,
                             AnchorKind::LeftmostNonNoisy),
                  ModelKind::UnweightedSet, 4);
  consumeAll(M, {0, 1, 2, 3}); // TW = [0,1] disjoint from CW = [2,3]
  EXPECT_EQ(M.computeAnchorOffset(), 2u); // offset of the CW start
}

//===----------------------------------------------------------------------===//
// Resize policies
//===----------------------------------------------------------------------===//

TEST(WindowedModelTest, SlideResizeKeepsTWLengthAndShrinksCW) {
  WindowedModel M(makeConfig(3, 3, TWPolicyKind::Adaptive,
                             AnchorKind::RightmostNoisy, ResizeKind::Slide),
                  ModelKind::UnweightedSet, 3);
  consumeAll(M, {0, 1, 2, 0, 0, 2}); // anchor at TW index 2
  M.startPhase();
  // Slide: TW drops [a,b], takes 2 elements from the CW: TW = [c,a,a],
  // CW = [c].
  EXPECT_EQ(M.twLength(), 3u);
  EXPECT_EQ(M.cwLength(), 1u);
  // Comparisons continue while the CW refills.
  EXPECT_TRUE(M.windowsFull());
}

TEST(WindowedModelTest, MoveResizeShrinksTWAndKeepsCW) {
  WindowedModel M(makeConfig(3, 3, TWPolicyKind::Adaptive,
                             AnchorKind::RightmostNoisy, ResizeKind::Move),
                  ModelKind::UnweightedSet, 3);
  consumeAll(M, {0, 1, 2, 0, 0, 2});
  M.startPhase();
  EXPECT_EQ(M.twLength(), 1u); // [c]
  EXPECT_EQ(M.cwLength(), 3u); // untouched
}

TEST(WindowedModelTest, AdaptiveTWGrowsWhileInPhase) {
  WindowedModel M(makeConfig(3, 3, TWPolicyKind::Adaptive),
                  ModelKind::UnweightedSet, 2);
  consumeN(M, 0, 6);
  M.startPhase();
  uint64_t TWBefore = M.twLength();
  consumeN(M, 0, 10);
  EXPECT_EQ(M.twLength(), TWBefore + 10);
  EXPECT_EQ(M.cwLength(), 3u);
}

TEST(WindowedModelTest, ConstantTWDoesNotGrowInPhase) {
  WindowedModel M(makeConfig(3, 3, TWPolicyKind::Constant),
                  ModelKind::UnweightedSet, 2);
  consumeN(M, 0, 6);
  M.startPhase();
  consumeN(M, 0, 10);
  EXPECT_EQ(M.twLength(), 3u);
  EXPECT_EQ(M.cwLength(), 3u);
}

TEST(WindowedModelTest, AdaptiveTWResetsAfterPhaseEnd) {
  WindowedModel M(makeConfig(3, 3, TWPolicyKind::Adaptive),
                  ModelKind::UnweightedSet, 2);
  consumeN(M, 0, 6);
  M.startPhase();
  consumeN(M, 0, 50);
  M.endPhase();
  consumeN(M, 1, 20);
  // TW back to its configured size.
  EXPECT_EQ(M.twLength(), 3u);
  EXPECT_EQ(M.cwLength(), 3u);
}

//===----------------------------------------------------------------------===//
// Invariants under random streams
//===----------------------------------------------------------------------===//

class ModelInvariantTest
    : public testing::TestWithParam<std::tuple<TWPolicyKind, ModelKind>> {};

TEST_P(ModelInvariantTest, BookkeepingStaysConsistent) {
  auto [Policy, Model] = GetParam();
  WindowedModel M(makeConfig(8, 8, Policy), Model, 6);
  Xoshiro256 Rng(42);
  bool InPhase = false;
  for (int I = 0; I < 5000; ++I) {
    M.consume(static_cast<SiteIndex>(Rng.nextBelow(6)));
    // Kernel totals always match the window lengths.
    ASSERT_EQ(M.kernel().cwTotal(), M.cwLength());
    ASSERT_EQ(M.kernel().twTotal(), M.twLength());
    ASSERT_LE(M.cwLength(), 8u);
    if (M.windowsFull()) {
      double Sim = M.similarity();
      ASSERT_GE(Sim, 0.0);
      ASSERT_LE(Sim, 1.0);
    }
    // Occasionally toggle phases the way a detector would.
    if (M.windowsFull() && !InPhase && Rng.nextBool(0.01)) {
      M.startPhase();
      InPhase = true;
    } else if (InPhase && Rng.nextBool(0.01)) {
      M.endPhase();
      InPhase = false;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ModelInvariantTest,
    testing::Combine(testing::Values(TWPolicyKind::Constant,
                                     TWPolicyKind::Adaptive),
                     testing::Values(ModelKind::UnweightedSet,
                                     ModelKind::WeightedSet)));

TEST(WindowedModelTest, ResetRestoresInitialState) {
  WindowedModel M(makeConfig(4, 4, TWPolicyKind::Adaptive),
                  ModelKind::WeightedSet, 3);
  consumeN(M, 1, 30);
  M.startPhase();
  consumeN(M, 2, 30);
  M.reset();
  EXPECT_EQ(M.consumed(), 0u);
  EXPECT_EQ(M.cwLength(), 0u);
  EXPECT_EQ(M.twLength(), 0u);
  EXPECT_FALSE(M.windowsFull());
}

TEST(WindowedModelTest, ConsumedCountsEverything) {
  WindowedModel M(makeConfig(2, 2), ModelKind::UnweightedSet, 2);
  consumeN(M, 0, 123);
  EXPECT_EQ(M.consumed(), 123u);
}

TEST(WindowedModelTest, NamesAreStable) {
  EXPECT_STREQ(twPolicyName(TWPolicyKind::Adaptive), "adaptive");
  EXPECT_STREQ(anchorKindName(AnchorKind::RightmostNoisy), "RN");
  EXPECT_STREQ(resizeKindName(ResizeKind::Move), "move");
}

//===----------------------------------------------------------------------===//
// Buffer compaction
//===----------------------------------------------------------------------===//

// The dead-prefix erase in compactBuffer() fires once the prefix crosses
// WindowedModel::CompactionThreshold; this drives a constant-TW model
// across that boundary and cross-checks the kernel against a brute-force
// shadow of the window contents on both sides of it, so an off-by-one in
// the Head rebase would misalign the windows and fail loudly.
TEST(WindowedModelTest, CompactionBoundaryPreservesWindowContents) {
  constexpr uint32_t CW = 8, TW = 8;
  constexpr SiteIndex NumSites = 13;
  WindowedModel M(makeConfig(CW, TW), ModelKind::WeightedSet, NumSites);

  // Steady-state sliding advances Head by one per element, so the
  // boundary falls a fixed distance past the threshold.
  const uint64_t Boundary = WindowedModel::CompactionThreshold + CW + TW;
  const uint64_t Total = Boundary + 64;

  std::vector<SiteIndex> History;
  History.reserve(Total);
  SplitMix64 Rng(7);
  for (uint64_t I = 0; I != Total; ++I) {
    SiteIndex S = static_cast<SiteIndex>(Rng.next() % NumSites);
    History.push_back(S);
    M.consume(S);

    if (I + 1 < Boundary - 2 || !M.windowsFull())
      continue;
    // Brute-force weighted similarity over the last TW+CW elements.
    uint64_t CWC[NumSites] = {0}, TWC[NumSites] = {0};
    for (uint64_t J = History.size() - CW; J != History.size(); ++J)
      ++CWC[History[J]];
    for (uint64_t J = History.size() - CW - TW;
         J != History.size() - CW; ++J)
      ++TWC[History[J]];
    uint64_t MinSum = 0;
    for (SiteIndex S2 = 0; S2 != NumSites; ++S2)
      MinSum += std::min(CWC[S2] * static_cast<uint64_t>(TW),
                         TWC[S2] * static_cast<uint64_t>(CW));
    double Expected = static_cast<double>(MinSum) /
                      (static_cast<double>(CW) * static_cast<double>(TW));
    ASSERT_EQ(M.similarity(), Expected) << "element " << I;
    ASSERT_EQ(M.cwLength(), CW);
    ASSERT_EQ(M.twLength(), TW);
  }
  EXPECT_EQ(M.consumed(), Total);
}
