//===- tests/FuzzTest.cpp - Randomized whole-pipeline property tests ----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A random JP program generator drives property tests over the whole
/// pipeline: generated sources must compile, print/reparse/print must be
/// idempotent, interpretation must stay within resource bounds with
/// balanced call-loop traces, the oracle must produce well-formed
/// solutions, and detectors must produce well-formed output that the
/// scoring metric maps into [0, 1].
///
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"
#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"
#include "lang/Diagnostics.h"
#include "lang/Printer.h"
#include "lang/Sema.h"
#include "metrics/Scoring.h"
#include "support/Random.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

/// Generates random but well-formed JP sources. Termination is
/// guaranteed structurally: method i may only call methods with larger
/// indices, loop trip counts are bounded literals, and recursion is
/// never generated (the interpreter's fuel limit is a backstop, not a
/// crutch).
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : Rng(Seed) {}

  std::string generate() {
    unsigned NumHelpers = 1 + static_cast<unsigned>(Rng.nextBelow(4));
    HelperArity.clear();
    for (unsigned I = 0; I != NumHelpers; ++I)
      HelperArity.push_back(Rng.nextBelow(3) == 0 ? 1 : 0);

    std::string Out = "program fuzz;\n";
    // helper0..helperN-1; helper i may only call helpers with larger
    // indices (guarantees termination); main may call any helper.
    for (unsigned I = 0; I != NumHelpers; ++I) {
      CurrentMethod = I;
      Params = HelperArity[I];
      Out += "method helper" + std::to_string(I) + "(";
      if (Params)
        Out += "p";
      Out += ") " + genBlock(2) + "\n";
    }
    CurrentMethod = NumHelpers;
    Params = 0;
    Out += "method main() " + genBlock(3) + "\n";
    return Out;
  }

private:
  std::string genBlock(unsigned Depth) {
    unsigned NumStmts = 1 + static_cast<unsigned>(Rng.nextBelow(4));
    std::string Out = "{ ";
    for (unsigned I = 0; I != NumStmts; ++I)
      Out += genStmt(Depth) + " ";
    Out += "}";
    return Out;
  }

  std::string genStmt(unsigned Depth) {
    unsigned Choice =
        static_cast<unsigned>(Rng.nextBelow(Depth == 0 ? 2 : 7));
    switch (Choice) {
    case 0:
      return "branch b" + std::to_string(NextLabel++) + ";";
    case 1:
      return "branch b" + std::to_string(NextLabel++) + " flip 0." +
             std::to_string(1 + Rng.nextBelow(9)) + ";";
    case 2: {
      std::string Var = "v" + std::to_string(NextLabel++);
      return "loop " + Var + " times " +
             std::to_string(1 + Rng.nextBelow(20)) + " " +
             genBlock(Depth - 1);
    }
    case 3:
      return "if 0." + std::to_string(1 + Rng.nextBelow(9)) + " " +
             genBlock(Depth - 1) +
             (Rng.nextBool(0.5) ? " else " + genBlock(Depth - 1) : "");
    case 4: {
      std::string Cond = genExpr();
      return "when (" + Cond + ") " + genBlock(Depth - 1) +
             (Rng.nextBool(0.5) ? " else " + genBlock(Depth - 1) : "");
    }
    case 5: {
      // Call a strictly-later-indexed helper, if any exists.
      unsigned FirstCallable = CurrentMethod + 1;
      if (FirstCallable >= HelperArity.size())
        return "branch b" + std::to_string(NextLabel++) + ";";
      unsigned Callee =
          FirstCallable + static_cast<unsigned>(Rng.nextBelow(
                              HelperArity.size() - FirstCallable));
      std::string Call = "call helper" + std::to_string(Callee) + "(";
      if (HelperArity[Callee])
        Call += genExpr();
      Call += ");";
      return Call;
    }
    default:
      return "pick { weight " + std::to_string(1 + Rng.nextBelow(5)) +
             " " + genBlock(Depth - 1) + " weight " +
             std::to_string(1 + Rng.nextBelow(5)) + " " +
             genBlock(Depth - 1) + " }";
    }
  }

  std::string genExpr() {
    // Small integer expressions; use the parameter when available.
    std::string LHS = Params && Rng.nextBool(0.5)
                          ? "p"
                          : std::to_string(Rng.nextBelow(10));
    std::string RHS = std::to_string(Rng.nextBelow(10));
    static const char *const Ops[] = {"+", "-", "*", "%", "<",
                                      ">", "==", "!="};
    return LHS + " " + Ops[Rng.nextBelow(8)] + " " + RHS;
  }

  Xoshiro256 Rng;
  std::vector<unsigned> HelperArity;
  unsigned CurrentMethod = 0;
  unsigned Params = 0;
  unsigned NextLabel = 0;
};

} // namespace

class FuzzPipelineTest : public testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPipelineTest, GeneratedProgramsSurviveTheWholePipeline) {
  ProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();

  // 1. Compile.
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = compileProgram(Source, Diags);
  ASSERT_NE(Prog, nullptr) << Diags.renderAll() << "\nsource:\n" << Source;

  // 2. Print / reparse / print is idempotent.
  std::string Printed = printProgram(*Prog);
  DiagnosticEngine Diags2;
  std::unique_ptr<Program> Reparsed = compileProgram(Printed, Diags2);
  ASSERT_NE(Reparsed, nullptr)
      << Diags2.renderAll() << "\nprinted:\n" << Printed;
  EXPECT_EQ(printProgram(*Reparsed), Printed);

  // 3. Interpret with a fuel bound; traces must be consistent.
  InterpreterOptions Options;
  Options.Seed = GetParam() * 31 + 7;
  Options.MaxBranches = 200000;
  ExecutionResult Exec = runProgram(*Prog, Options);
  ASSERT_EQ(Exec.Stats.DynamicBranches, Exec.Branches.size());
  // Balanced call-loop trace: every enter has a matching exit.
  int64_t Depth = 0;
  for (const CallLoopEvent &E : Exec.CallLoop.events()) {
    Depth += isEnterEvent(E.Kind) ? 1 : -1;
    ASSERT_GE(Depth, 0);
    ASSERT_LE(E.Offset, Exec.Branches.size());
  }
  EXPECT_EQ(Depth, 0);

  if (Exec.Branches.empty())
    return; // A program of empty picks may emit nothing; that is fine.

  // 4. Oracle well-formedness across MPLs.
  std::vector<BaselineSolution> Sols = computeBaselines(
      Exec.CallLoop, Exec.Branches.size(), {50, 500, 5000});
  for (const BaselineSolution &Sol : Sols) {
    EXPECT_EQ(Sol.states().size(), Exec.Branches.size());
    uint64_t PrevEnd = 0;
    for (const PhaseInterval &P : Sol.phases()) {
      EXPECT_LE(PrevEnd, P.Begin);
      EXPECT_LT(P.Begin, P.End);
      EXPECT_LE(P.End, Exec.Branches.size());
      EXPECT_GE(P.length(), Sol.mpl());
      PrevEnd = P.End;
    }
  }

  // 5. Detector output well-formedness and scoring bounds.
  DetectorConfig C;
  C.Window.CWSize = 64;
  C.Window.TWSize = 64;
  C.Window.TWPolicy = GetParam() % 2 == 0 ? TWPolicyKind::Adaptive
                                          : TWPolicyKind::Constant;
  C.Model = GetParam() % 3 == 0 ? ModelKind::WeightedSet
                                : ModelKind::UnweightedSet;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  std::unique_ptr<PhaseDetector> D =
      makeDetector(C, Exec.Branches.numSites());
  DetectorRun Run = runDetector(*D, Exec.Branches);
  EXPECT_EQ(Run.States.size(), Exec.Branches.size());
  for (const BaselineSolution &Sol : Sols) {
    AccuracyScore S = scoreDetection(Run.States, Sol.states());
    EXPECT_GE(S.Score, 0.0);
    EXPECT_LE(S.Score, 1.0);
    AccuracyScore SA = scoreDetection(Run.AnchoredPhases, Sol.states());
    EXPECT_GE(SA.Score, 0.0);
    EXPECT_LE(SA.Score, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelineTest,
                         testing::Range<uint64_t>(1, 25));
