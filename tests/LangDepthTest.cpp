//===- tests/LangDepthTest.cpp - Additional front-end/VM depth tests ----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Sweep.h"
#include "lang/Diagnostics.h"
#include "lang/Lexer.h"
#include "lang/Sema.h"
#include "support/Casting.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

std::unique_ptr<Program> compileOK(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.renderAll();
  return P;
}

ExecutionResult run(const std::string &Source, uint64_t Seed = 1) {
  std::unique_ptr<Program> P = compileOK(Source);
  InterpreterOptions Options;
  Options.Seed = Seed;
  return runProgram(*P, Options);
}

std::string compileFail(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_EQ(P, nullptr);
  return Diags.renderAll();
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer depth
//===----------------------------------------------------------------------===//

TEST(LexerDepthTest, NumberFollowedByIdentifier) {
  Lexer L("5x");
  Token N = L.next();
  EXPECT_EQ(N.Kind, TokenKind::Integer);
  EXPECT_EQ(N.IntValue, 5);
  Token Id = L.next();
  EXPECT_EQ(Id.Kind, TokenKind::Identifier);
  EXPECT_EQ(Id.Text, "x");
}

TEST(LexerDepthTest, LeadingDotIsError) {
  Lexer L(".5");
  EXPECT_EQ(L.next().Kind, TokenKind::Error);
}

TEST(LexerDepthTest, ColumnsAfterComment) {
  Lexer L("// c\n  abc");
  Token T = L.next();
  EXPECT_EQ(T.Loc.Line, 2u);
  EXPECT_EQ(T.Loc.Col, 3u);
}

TEST(LexerDepthTest, LargeIntegerWithMSuffix) {
  Lexer L("62M");
  Token T = L.next();
  EXPECT_EQ(T.IntValue, 62000000);
}

TEST(LexerDepthTest, UnderscoreIdentifiers) {
  Lexer L("_a b_2 c_d_e");
  EXPECT_EQ(L.next().Text, "_a");
  EXPECT_EQ(L.next().Text, "b_2");
  EXPECT_EQ(L.next().Text, "c_d_e");
}

//===----------------------------------------------------------------------===//
// Parser/Sema depth
//===----------------------------------------------------------------------===//

TEST(ParserDepthTest, SubtractionIsLeftAssociative) {
  // 10 - 2 - 3 = 5 iterations.
  ExecutionResult R = run(
      "program t; method main() { loop times 10 - 2 - 3 { branch a; } }");
  EXPECT_EQ(R.Branches.size(), 5u);
}

TEST(ParserDepthTest, RemBindsTighterThanPlus) {
  // 1 + 7 % 3 = 1 + 1 = 2.
  ExecutionResult R = run(
      "program t; method main() { loop times 1 + 7 % 3 { branch a; } }");
  EXPECT_EQ(R.Branches.size(), 2u);
}

TEST(ParserDepthTest, IntegerProbabilityLiterals) {
  ExecutionResult R = run(
      "program t; method main() {"
      "  loop times 20 { if 1 { branch a; } else { branch b; } }"
      "  loop times 20 { if 0 { branch c; } else { branch d; } }"
      "}");
  // if 1 always takes 'a'; if 0 always takes 'd'.
  unsigned CountA = 0, CountD = 0;
  for (uint64_t I = 0; I != R.Branches.size(); ++I) {
    ProfileElement E = R.Branches.sites().element(R.Branches[I]);
    CountA += E.bytecodeOffset() == 1; // branch a
    CountD += E.bytecodeOffset() == 5; // branch d
  }
  EXPECT_EQ(CountA, 20u);
  EXPECT_EQ(CountD, 20u);
}

TEST(ParserDepthTest, ForwardReferencesResolve) {
  ExecutionResult R = run(
      "program t;"
      "method main() { call later(); }"
      "method later() { branch a; }");
  EXPECT_EQ(R.Branches.size(), 1u);
}

TEST(ParserDepthTest, DeeplyNestedBlocksParse) {
  std::string Source = "program t; method main() ";
  for (int I = 0; I != 30; ++I)
    Source += "{ ";
  Source += "branch a;";
  for (int I = 0; I != 30; ++I)
    Source += " }";
  ExecutionResult R = run(Source);
  EXPECT_EQ(R.Branches.size(), 1u);
}

TEST(ParserDepthTest, ZeroWeightRejected) {
  std::string Diags = compileFail(
      "program t; method main() { pick { weight 0 { branch a; } } }");
  EXPECT_NE(Diags.find("positive integer weight"), std::string::npos);
}

TEST(SemaDepthTest, SiteOffsetsIndependentPerMethod) {
  std::unique_ptr<Program> P = compileOK(
      "program t;"
      "method f() { branch a; branch b; }"
      "method main() { branch c; call f(); }");
  const auto *A = cast<BranchStmt>(P->methods()[0]->body()->stmts()[0].get());
  const auto *C = cast<BranchStmt>(P->methods()[1]->body()->stmts()[0].get());
  EXPECT_EQ(A->siteOffset(), 0u);
  EXPECT_EQ(C->siteOffset(), 0u); // restarts per method
  EXPECT_EQ(P->methods()[0]->numSites(), 2u);
  EXPECT_EQ(P->methods()[1]->numSites(), 1u);
}

TEST(SemaDepthTest, NestedLoopVarsGetDistinctSlots) {
  std::unique_ptr<Program> P = compileOK(
      "program t; method main() {"
      "  loop i times 2 { loop j times 2 { when (i + j > 1) { branch a; } } }"
      "}");
  const auto *Outer =
      cast<LoopStmt>(P->methods()[0]->body()->stmts()[0].get());
  const auto *Inner = cast<LoopStmt>(Outer->body()->stmts()[0].get());
  EXPECT_NE(Outer->varSlot(), Inner->varSlot());
  EXPECT_EQ(P->methods()[0]->numSlots(), 2u);
}

TEST(SemaDepthTest, SiblingLoopsReuseSlots) {
  std::unique_ptr<Program> P = compileOK(
      "program t; method main() {"
      "  loop i times 2 { branch a; }"
      "  loop j times 2 { branch b; }"
      "}");
  const auto *First =
      cast<LoopStmt>(P->methods()[0]->body()->stmts()[0].get());
  const auto *Second =
      cast<LoopStmt>(P->methods()[0]->body()->stmts()[1].get());
  EXPECT_EQ(First->varSlot(), Second->varSlot()); // scopes do not overlap
  EXPECT_EQ(P->methods()[0]->numSlots(), 1u);
}

//===----------------------------------------------------------------------===//
// Interpreter depth
//===----------------------------------------------------------------------===//

TEST(InterpreterDepthTest, LoopVarVisibleInNestedLoopCounts) {
  // Inner trip count depends on the outer variable: sum 0+1+2 = 3.
  ExecutionResult R = run(
      "program t; method main() {"
      "  loop i times 3 { loop times i { branch a; } }"
      "}");
  EXPECT_EQ(R.Branches.size(), 3u);
}

TEST(InterpreterDepthTest, ZeroIterationLoopStillEmitsEvents) {
  ExecutionResult R = run(
      "program t; method main() { loop times 0 { branch a; } }");
  EXPECT_EQ(R.Branches.size(), 0u);
  ASSERT_EQ(R.CallLoop.size(), 4u); // main enter, loop enter/exit, exit
  EXPECT_EQ(R.CallLoop[1].Kind, CallLoopEventKind::LoopEnter);
  EXPECT_EQ(R.CallLoop[2].Kind, CallLoopEventKind::LoopExit);
  EXPECT_EQ(R.Stats.LoopExecutions, 1u);
}

TEST(InterpreterDepthTest, RecursionNearDepthLimitCompletes) {
  // Recurse to just under a lowered MaxCallDepth: deep enough to prove the
  // limit is not triggered early, shallow enough that the interpreter's own
  // native recursion fits in the default stack even with sanitizer frames.
  std::unique_ptr<Program> P = compileOK(
      "program t;"
      "method f(d) { branch a; when (d > 0) { call f(d - 1); } }"
      "method main() { call f(1000); }");
  InterpreterOptions Options;
  Options.Seed = 1;
  Options.MaxCallDepth = 1100;
  ExecutionResult R = runProgram(*P, Options);
  EXPECT_FALSE(R.Stats.HaltedByDepth);
  EXPECT_EQ(R.Stats.MaxCallDepth, 1002u);
  EXPECT_EQ(R.Branches.size(), 2u * 1000 + 2);
}

TEST(InterpreterDepthTest, NestedPickSelectsThroughLayers) {
  ExecutionResult R = run(
      "program t; method main() {"
      "  loop times 64 {"
      "    pick { weight 1 { pick { weight 1 { branch a; }"
      "                             weight 1 { branch b; } } }"
      "           weight 1 { branch c; } }"
      "  }"
      "}");
  EXPECT_EQ(R.Branches.size(), 64u);
  EXPECT_EQ(R.Branches.numSites(), 3u);
}

TEST(InterpreterDepthTest, StatsCountDistinctConstructs) {
  ExecutionResult R = run(
      "program t;"
      "method g() { loop times 2 { branch a; } }"
      "method main() {"
      "  loop times 3 { call g(); }"
      "  loop times 2 { branch b; }"
      "}");
  EXPECT_EQ(R.Stats.MethodInvocations, 4u); // main + 3x g
  EXPECT_EQ(R.Stats.LoopExecutions, 5u);    // main's 2 + g's 3
  EXPECT_EQ(R.Stats.RecursionRoots, 0u);
}

TEST(InterpreterDepthTest, NegativeSeedStreamsDiffer) {
  const char *Source = "program t; method main() {"
                       "  loop times 64 { branch a flip 0.5; } }";
  ExecutionResult A = run(Source, 0); // seed zero is legal
  ExecutionResult B = run(Source, UINT64_MAX);
  ASSERT_EQ(A.Branches.size(), B.Branches.size());
  bool Different = false;
  for (uint64_t I = 0; I != A.Branches.size(); ++I)
    Different |= A.Branches[I] != B.Branches[I];
  EXPECT_TRUE(Different);
}

//===----------------------------------------------------------------------===//
// Harness depth
//===----------------------------------------------------------------------===//

TEST(HarnessDepthTest, SubsetOrderPreserved) {
  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks({"jlex", "db"}, {1000}, /*Scale=*/0.2);
  ASSERT_EQ(Benchmarks.size(), 2u);
  EXPECT_EQ(Benchmarks[0].Name, "jlex");
  EXPECT_EQ(Benchmarks[1].Name, "db");
}

TEST(HarnessDepthTest, PaperAnalyzerSetMatchesFigure6) {
  std::vector<AnalyzerSpec> Analyzers = paperAnalyzers();
  ASSERT_EQ(Analyzers.size(), 10u);
  unsigned Thresholds = 0, Averages = 0;
  for (const AnalyzerSpec &A : Analyzers) {
    Thresholds += A.Kind == AnalyzerKind::Threshold;
    Averages += A.Kind == AnalyzerKind::Average;
  }
  EXPECT_EQ(Thresholds, 4u);
  EXPECT_EQ(Averages, 6u);
}
