//===- tests/CoreKernelTest.cpp - Similarity kernel tests ---------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/SimilarityKernel.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

using namespace opd;

namespace {

/// Reference implementation: recompute both similarities from raw window
/// multisets.
struct ReferenceWindows {
  std::map<SiteIndex, uint64_t> CW, TW;
  uint64_t NCW = 0, NTW = 0;

  void cwAdd(SiteIndex S) {
    ++CW[S];
    ++NCW;
  }
  void cwRemove(SiteIndex S) {
    auto It = CW.find(S);
    ASSERT_NE(It, CW.end());
    if (--It->second == 0)
      CW.erase(It);
    --NCW;
  }
  void twAdd(SiteIndex S) {
    ++TW[S];
    ++NTW;
  }
  void twRemove(SiteIndex S) {
    auto It = TW.find(S);
    ASSERT_NE(It, TW.end());
    if (--It->second == 0)
      TW.erase(It);
    --NTW;
  }

  double unweighted() const {
    if (CW.empty())
      return 0.0;
    uint64_t Both = 0;
    for (const auto &[S, Count] : CW)
      Both += TW.count(S) ? 1 : 0;
    return static_cast<double>(Both) / static_cast<double>(CW.size());
  }

  double weighted() const {
    if (NCW == 0 || NTW == 0)
      return 0.0;
    double Sum = 0.0;
    for (const auto &[S, Count] : CW) {
      auto It = TW.find(S);
      uint64_t TWCount = It == TW.end() ? 0 : It->second;
      Sum += std::min(static_cast<double>(Count) / NCW,
                      static_cast<double>(TWCount) / NTW);
    }
    return Sum;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Paper examples (Section 2, Model Policy)
//===----------------------------------------------------------------------===//

TEST(UnweightedKernelTest, PaperExampleHalfOverlap) {
  // CW = {a, b}, TW = {a, c} -> 0.5 "regardless of how often a appears".
  UnweightedSetKernel K(3);
  K.cwAdd(0); // a
  K.cwAdd(1); // b
  K.twAdd(0); // a
  K.twAdd(2); // c
  EXPECT_DOUBLE_EQ(K.similarity(), 0.5);
}

TEST(UnweightedKernelTest, FrequencyIndependent) {
  // CW = {a x 100, b}, TW = {a} -> still 0.5.
  UnweightedSetKernel K(2);
  for (int I = 0; I < 100; ++I)
    K.cwAdd(0);
  K.cwAdd(1);
  K.twAdd(0);
  EXPECT_DOUBLE_EQ(K.similarity(), 0.5);
}

TEST(UnweightedKernelTest, FullContainmentIsOne) {
  // All CW elements present in TW -> 1.0 regardless of frequencies.
  UnweightedSetKernel K(4);
  K.cwAdd(0);
  K.cwAdd(1);
  K.twAdd(0);
  K.twAdd(1);
  K.twAdd(2);
  K.twAdd(3);
  EXPECT_DOUBLE_EQ(K.similarity(), 1.0);
}

TEST(UnweightedKernelTest, EmptyCWIsZero) {
  UnweightedSetKernel K(2);
  K.twAdd(0);
  EXPECT_DOUBLE_EQ(K.similarity(), 0.0);
}

TEST(WeightedKernelTest, PaperWorkedExample) {
  // CW = {(a,5),(b,3),(c,2)}, TW = {(a,25),(b,15),(c,10),(d,50)}:
  // min weights .25 + .15 + .10 = 0.5.
  WeightedSetKernel K(4);
  for (int I = 0; I < 5; ++I)
    K.cwAdd(0);
  for (int I = 0; I < 3; ++I)
    K.cwAdd(1);
  for (int I = 0; I < 2; ++I)
    K.cwAdd(2);
  for (int I = 0; I < 25; ++I)
    K.twAdd(0);
  for (int I = 0; I < 15; ++I)
    K.twAdd(1);
  for (int I = 0; I < 10; ++I)
    K.twAdd(2);
  for (int I = 0; I < 50; ++I)
    K.twAdd(3);
  EXPECT_NEAR(K.similarity(), 0.5, 1e-12);
}

TEST(WeightedKernelTest, IdenticalDistributionsAreOne) {
  WeightedSetKernel K(3);
  for (SiteIndex S = 0; S != 3; ++S)
    for (int I = 0; I <= static_cast<int>(S); ++I) {
      K.cwAdd(S);
      K.twAdd(S);
    }
  EXPECT_NEAR(K.similarity(), 1.0, 1e-12);
}

TEST(WeightedKernelTest, DisjointWindowsAreZero) {
  WeightedSetKernel K(4);
  K.cwAdd(0);
  K.cwAdd(1);
  K.twAdd(2);
  K.twAdd(3);
  EXPECT_DOUBLE_EQ(K.similarity(), 0.0);
}

TEST(WeightedKernelTest, EmptyWindowIsZero) {
  WeightedSetKernel K(2);
  K.cwAdd(0);
  EXPECT_DOUBLE_EQ(K.similarity(), 0.0);
}

//===----------------------------------------------------------------------===//
// Incremental consistency: random op streams vs reference
//===----------------------------------------------------------------------===//

namespace {

/// Drives a kernel and the reference through the same random op sequence,
/// checking similarity after every op.
template <typename KernelT>
void runRandomOps(uint64_t Seed, bool Weighted) {
  const SiteIndex NumSites = 12;
  KernelT K(NumSites);
  ReferenceWindows Ref;
  Xoshiro256 Rng(Seed);
  // Track window contents for valid removals/replaces.
  std::vector<SiteIndex> CWItems, TWItems;

  for (int Step = 0; Step < 4000; ++Step) {
    unsigned Op = static_cast<unsigned>(Rng.nextBelow(6));
    SiteIndex S = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
    switch (Op) {
    case 0: // cwAdd
      K.cwAdd(S);
      Ref.cwAdd(S);
      CWItems.push_back(S);
      break;
    case 1: // twAdd
      K.twAdd(S);
      Ref.twAdd(S);
      TWItems.push_back(S);
      break;
    case 2: // cwRemove
      if (CWItems.empty())
        continue;
      S = CWItems[Rng.nextBelow(CWItems.size())];
      K.cwRemove(S);
      Ref.cwRemove(S);
      CWItems.erase(std::find(CWItems.begin(), CWItems.end(), S));
      break;
    case 3: // twRemove
      if (TWItems.empty())
        continue;
      S = TWItems[Rng.nextBelow(TWItems.size())];
      K.twRemove(S);
      Ref.twRemove(S);
      TWItems.erase(std::find(TWItems.begin(), TWItems.end(), S));
      break;
    case 4: { // cwReplace (totals-stable path in the weighted kernel)
      if (CWItems.empty())
        continue;
      SiteIndex Out = CWItems[Rng.nextBelow(CWItems.size())];
      K.cwReplace(S, Out);
      Ref.cwAdd(S);
      Ref.cwRemove(Out);
      CWItems.erase(std::find(CWItems.begin(), CWItems.end(), Out));
      CWItems.push_back(S);
      break;
    }
    case 5: { // twReplace
      if (TWItems.empty())
        continue;
      SiteIndex Out = TWItems[Rng.nextBelow(TWItems.size())];
      K.twReplace(S, Out);
      Ref.twAdd(S);
      Ref.twRemove(Out);
      TWItems.erase(std::find(TWItems.begin(), TWItems.end(), Out));
      TWItems.push_back(S);
      break;
    }
    }
    double Expected = Weighted ? Ref.weighted() : Ref.unweighted();
    ASSERT_NEAR(K.similarity(), Expected, 1e-9)
        << "divergence at step " << Step << " (seed " << Seed << ")";
  }
}

} // namespace

class KernelPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(KernelPropertyTest, UnweightedMatchesReference) {
  runRandomOps<UnweightedSetKernel>(GetParam(), /*Weighted=*/false);
}

TEST_P(KernelPropertyTest, WeightedMatchesReference) {
  runRandomOps<WeightedSetKernel>(GetParam(), /*Weighted=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPropertyTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===//
// Reset and steady-state replace behavior
//===----------------------------------------------------------------------===//

TEST(KernelTest, ResetClearsEverything) {
  for (ModelKind Kind :
       {ModelKind::UnweightedSet, ModelKind::WeightedSet}) {
    std::unique_ptr<SimilarityKernel> K = makeKernel(Kind, 4);
    K->cwAdd(0);
    K->twAdd(0);
    K->twAdd(1);
    K->reset();
    EXPECT_EQ(K->cwTotal(), 0u);
    EXPECT_EQ(K->twTotal(), 0u);
    EXPECT_DOUBLE_EQ(K->similarity(), 0.0);
    EXPECT_FALSE(K->inCW(0));
  }
}

TEST(KernelTest, InCWTracksOccupancy) {
  UnweightedSetKernel K(3);
  EXPECT_FALSE(K.inCW(1));
  K.cwAdd(1);
  EXPECT_TRUE(K.inCW(1));
  K.cwRemove(1);
  EXPECT_FALSE(K.inCW(1));
}

TEST(KernelTest, MoveCWToTWPreservesTotals) {
  WeightedSetKernel K(2);
  K.cwAdd(0);
  K.cwAdd(1);
  K.moveCWToTW(0);
  EXPECT_EQ(K.cwTotal(), 1u);
  EXPECT_EQ(K.twTotal(), 1u);
  // CW = {1}, TW = {0}: disjoint.
  EXPECT_DOUBLE_EQ(K.similarity(), 0.0);
}

TEST(KernelTest, WeightedSteadyStateReplaceIsExact) {
  // Exercise many totals-stable replaces after a dirty fill and verify
  // against a fresh recomputation through the reference.
  const SiteIndex NumSites = 8;
  WeightedSetKernel K(NumSites);
  ReferenceWindows Ref;
  Xoshiro256 Rng(99);
  std::vector<SiteIndex> CWItems, TWItems;
  for (int I = 0; I < 64; ++I) {
    SiteIndex S = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
    K.cwAdd(S);
    Ref.cwAdd(S);
    CWItems.push_back(S);
    SiteIndex T = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
    K.twAdd(T);
    Ref.twAdd(T);
    TWItems.push_back(T);
  }
  // Settle (forces the lazy recompute).
  ASSERT_NEAR(K.similarity(), Ref.weighted(), 1e-9);
  // Steady-state: only replaces from here on.
  for (int I = 0; I < 2000; ++I) {
    SiteIndex In = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
    SiteIndex Out = CWItems[Rng.nextBelow(CWItems.size())];
    K.cwReplace(In, Out);
    Ref.cwAdd(In);
    Ref.cwRemove(Out);
    CWItems.erase(std::find(CWItems.begin(), CWItems.end(), Out));
    CWItems.push_back(In);

    In = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
    Out = TWItems[Rng.nextBelow(TWItems.size())];
    K.twReplace(In, Out);
    Ref.twAdd(In);
    Ref.twRemove(Out);
    TWItems.erase(std::find(TWItems.begin(), TWItems.end(), Out));
    TWItems.push_back(In);

    ASSERT_NEAR(K.similarity(), Ref.weighted(), 1e-9) << "step " << I;
  }
}

TEST(KernelTest, FactoryCreatesRightKinds) {
  EXPECT_NE(dynamic_cast<UnweightedSetKernel *>(
                makeKernel(ModelKind::UnweightedSet, 4).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<WeightedSetKernel *>(
                makeKernel(ModelKind::WeightedSet, 4).get()),
            nullptr);
}

TEST(KernelTest, ModelKindNames) {
  EXPECT_STREQ(modelKindName(ModelKind::UnweightedSet), "unweighted");
  EXPECT_STREQ(modelKindName(ModelKind::WeightedSet), "weighted");
}

//===----------------------------------------------------------------------===//
// Boundary coverage: counts near uint32_t saturation and products near
// uint64_t — the extremes the KernelBounds certificates admit
// (analysis/KernelBounds.h). Streaming cannot reach these in a test's
// lifetime, so the counts are installed via seedCountsForTest().
//===----------------------------------------------------------------------===//

namespace {

/// Independent min-sum oracle evaluated entirely in unsigned 128-bit
/// arithmetic, so the expectation cannot share a wraparound bug with the
/// kernel under test.
uint64_t wideMinSum(const std::vector<uint32_t> &CW,
                    const std::vector<uint32_t> &TW) {
  unsigned __int128 NCW = 0, NTW = 0;
  for (uint32_t C : CW)
    NCW += C;
  for (uint32_t C : TW)
    NTW += C;
  unsigned __int128 Sum = 0;
  for (size_t S = 0; S != CW.size(); ++S)
    Sum += std::min(static_cast<unsigned __int128>(CW[S]) * NTW,
                    static_cast<unsigned __int128>(TW[S]) * NCW);
  EXPECT_LE(Sum, static_cast<unsigned __int128>(UINT64_MAX));
  return static_cast<uint64_t>(Sum);
}

} // namespace

TEST(KernelBoundaryTest, SaturatedCountsExactMinSum) {
  // One site at the uint32_t count ceiling in each window: NCW = NTW =
  // 2^32, and the min in every term picks the small factor, so MinSum =
  // 2^33 while the losing product sits at 2^64 - 2^32.
  std::vector<uint32_t> CW = {UINT32_MAX, 1};
  std::vector<uint32_t> TW = {1, UINT32_MAX};
  WeightedSetKernel K(2);
  K.seedCountsForTest(CW, TW);
  EXPECT_EQ(K.minSumForTest(), uint64_t(1) << 33);
  EXPECT_EQ(K.minSumForTest(), wideMinSum(CW, TW));
  // 2^33 / (2^32 * 2^32) = 2^-31, exactly representable.
  EXPECT_DOUBLE_EQ(K.similarity(), std::ldexp(1.0, -31));
}

TEST(KernelBoundaryTest, ProductExactlyAtUint64Max) {
  // tw[0] = 2 pushes NTW to 2^32 + 1, so term(0)'s losing product is
  // (2^32 - 1) * (2^32 + 1) = 2^64 - 1: the largest intermediate the
  // kernels can form without wrapping. The checked shadow arithmetic
  // must observe it and report zero overflows.
  std::vector<uint32_t> CW = {UINT32_MAX, 1};
  std::vector<uint32_t> TW = {2, UINT32_MAX};
  KernelValueProbe Probe;
  std::unique_ptr<SimilarityKernel> K =
      makeCheckedKernel(ModelKind::WeightedSet, 2, Probe);
  auto *WK = dynamic_cast<WeightedSetKernelT<CheckedKernelArith> *>(K.get());
  ASSERT_NE(WK, nullptr);
  WK->seedCountsForTest(CW, TW);
  EXPECT_EQ(WK->minSumForTest(), wideMinSum(CW, TW));
  EXPECT_EQ(Probe.totalOverflows(), 0u);
  EXPECT_EQ(Probe.observedMax(KernelQuantity::ProductCWTW), UINT64_MAX);
}

TEST(KernelBoundaryTest, IncrementalReplaceExactAtEdge) {
  // Steady-state replaces on the saturated counts: the gain/loss deltas
  // must agree bit-for-bit with a full recompute and with the wide
  // oracle even when the individual products approach 2^64.
  std::vector<uint32_t> CW = {UINT32_MAX, 1, 0};
  std::vector<uint32_t> TW = {1, 1, UINT32_MAX};
  WeightedSetKernel K(3);
  K.seedCountsForTest(CW, TW);
  (void)K.minSumForTest(); // clear Dirty so replaces take the delta path

  K.cwReplace(/*In=*/1, /*Out=*/0); // cw -> {2^32-2, 2, 0}
  --CW[0];
  ++CW[1];
  EXPECT_EQ(K.minSumForTest(), wideMinSum(CW, TW));

  K.twReplace(/*In=*/0, /*Out=*/2); // tw -> {2, 1, 2^32-2}
  ++TW[0];
  --TW[2];
  EXPECT_EQ(K.minSumForTest(), wideMinSum(CW, TW));

  WeightedSetKernel Fresh(3);
  Fresh.seedCountsForTest(CW, TW);
  EXPECT_EQ(K.minSumForTest(), Fresh.minSumForTest());
  EXPECT_DOUBLE_EQ(K.similarity(), Fresh.similarity());
}

TEST(KernelBoundaryTest, CheckedProbeFlagsProductWraparound) {
  // One element past ProductExactlyAtUint64Max: NTW = 2^32 + 2 makes
  // term(0)'s product (2^32 - 1) * (2^32 + 2) = 2^64 + 2^32 - 2, which
  // wraps uint64_t. The plain kernel would compute a wrong min-sum
  // silently; the checked shadow arithmetic must flag the overflow on
  // the exact quantity the certifier bounds.
  KernelValueProbe Probe;
  std::unique_ptr<SimilarityKernel> K =
      makeCheckedKernel(ModelKind::WeightedSet, 2, Probe);
  auto *WK = dynamic_cast<WeightedSetKernelT<CheckedKernelArith> *>(K.get());
  ASSERT_NE(WK, nullptr);
  WK->seedCountsForTest({UINT32_MAX, 1}, {2, UINT32_MAX});
  WK->twAdd(0); // NTW: 2^32 + 1 -> 2^32 + 2
  (void)WK->minSumForTest();
  EXPECT_GT(Probe.totalOverflows(), 0u);
  EXPECT_GE(Probe.overflowCount(KernelQuantity::ProductCWTW), 1u);
}
