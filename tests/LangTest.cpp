//===- tests/LangTest.cpp - Unit tests for src/lang ----------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

/// Lexes all of \p Source into a token-kind vector (excluding EOF).
std::vector<TokenKind> lexAll(const std::string &Source) {
  Lexer L(Source);
  std::vector<TokenKind> Kinds;
  for (Token T = L.next(); !T.is(TokenKind::EndOfFile); T = L.next()) {
    Kinds.push_back(T.Kind);
    if (T.is(TokenKind::Error))
      break;
  }
  return Kinds;
}

/// Parses + analyzes; expects success.
std::unique_ptr<Program> compileOK(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.renderAll();
  return P;
}

/// Parses + analyzes; expects failure and returns the diagnostics text.
std::string compileFail(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_EQ(P, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  return Diags.renderAll();
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, KeywordsAndIdentifiers) {
  std::vector<TokenKind> Kinds = lexAll("program foo method loop times x");
  ASSERT_EQ(Kinds.size(), 6u);
  EXPECT_EQ(Kinds[0], TokenKind::KwProgram);
  EXPECT_EQ(Kinds[1], TokenKind::Identifier);
  EXPECT_EQ(Kinds[2], TokenKind::KwMethod);
  EXPECT_EQ(Kinds[3], TokenKind::KwLoop);
  EXPECT_EQ(Kinds[4], TokenKind::KwTimes);
  EXPECT_EQ(Kinds[5], TokenKind::Identifier);
}

TEST(LexerTest, IntegerSuffixes) {
  Lexer L("5 10K 2M 1.5K");
  Token A = L.next();
  EXPECT_EQ(A.Kind, TokenKind::Integer);
  EXPECT_EQ(A.IntValue, 5);
  Token B = L.next();
  EXPECT_EQ(B.IntValue, 10000);
  Token C = L.next();
  EXPECT_EQ(C.IntValue, 2000000);
  Token D = L.next();
  EXPECT_EQ(D.Kind, TokenKind::Float);
  EXPECT_DOUBLE_EQ(D.FloatValue, 1500.0);
}

TEST(LexerTest, FloatLiterals) {
  Lexer L("0.75");
  Token T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Float);
  EXPECT_DOUBLE_EQ(T.FloatValue, 0.75);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  std::vector<TokenKind> Kinds = lexAll("{ } ( ) ; , + - * / % < <= > >= == !=");
  std::vector<TokenKind> Expected = {
      TokenKind::LBrace,  TokenKind::RBrace,       TokenKind::LParen,
      TokenKind::RParen,  TokenKind::Semicolon,    TokenKind::Comma,
      TokenKind::Plus,    TokenKind::Minus,        TokenKind::Star,
      TokenKind::Slash,   TokenKind::Percent,      TokenKind::Less,
      TokenKind::LessEqual, TokenKind::Greater,    TokenKind::GreaterEqual,
      TokenKind::EqualEqual, TokenKind::BangEqual};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, CommentsSkipped) {
  std::vector<TokenKind> Kinds = lexAll("// hello\nbranch // trailing\n;");
  ASSERT_EQ(Kinds.size(), 2u);
  EXPECT_EQ(Kinds[0], TokenKind::KwBranch);
  EXPECT_EQ(Kinds[1], TokenKind::Semicolon);
}

TEST(LexerTest, TracksLineAndColumn) {
  Lexer L("a\n  b");
  Token A = L.next();
  EXPECT_EQ(A.Loc.Line, 1u);
  EXPECT_EQ(A.Loc.Col, 1u);
  Token B = L.next();
  EXPECT_EQ(B.Loc.Line, 2u);
  EXPECT_EQ(B.Loc.Col, 3u);
}

TEST(LexerTest, InvalidCharacterIsErrorToken) {
  Lexer L("$");
  Token T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Error);
}

TEST(LexerTest, EOFIsSticky) {
  Lexer L("");
  EXPECT_EQ(L.next().Kind, TokenKind::EndOfFile);
  EXPECT_EQ(L.next().Kind, TokenKind::EndOfFile);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, MinimalProgram) {
  std::unique_ptr<Program> P =
      compileOK("program t; method main() { branch b; }");
  EXPECT_EQ(P->name(), "t");
  ASSERT_EQ(P->methods().size(), 1u);
  EXPECT_EQ(P->methods()[0]->name(), "main");
}

TEST(ParserTest, LoopWithVariableAndExprCount) {
  std::unique_ptr<Program> P = compileOK(
      "program t; method main() { loop i times 3 + 4 * 2 { branch b; } }");
  const auto *Loop =
      dyn_cast<LoopStmt>(P->methods()[0]->body()->stmts()[0].get());
  ASSERT_NE(Loop, nullptr);
  EXPECT_TRUE(Loop->hasVar());
  EXPECT_EQ(Loop->varName(), "i");
  const auto *Count = dyn_cast<BinaryExpr>(Loop->count());
  ASSERT_NE(Count, nullptr);
  EXPECT_EQ(Count->op(), BinaryOp::Add); // * binds tighter than +
}

TEST(ParserTest, BranchFlipAndPlainBranch) {
  std::unique_ptr<Program> P = compileOK(
      "program t; method main() { branch a; branch b flip 0.25; }");
  const auto &Stmts = P->methods()[0]->body()->stmts();
  ASSERT_EQ(Stmts.size(), 2u);
  EXPECT_DOUBLE_EQ(cast<BranchStmt>(Stmts[0].get())->flipProbability(), 1.0);
  EXPECT_DOUBLE_EQ(cast<BranchStmt>(Stmts[1].get())->flipProbability(),
                   0.25);
}

TEST(ParserTest, IfElseAndWhen) {
  std::unique_ptr<Program> P = compileOK(
      "program t; method main() {"
      "  if 0.5 { branch a; } else { branch b; }"
      "  when (1 < 2) { branch c; }"
      "}");
  const auto &Stmts = P->methods()[0]->body()->stmts();
  ASSERT_EQ(Stmts.size(), 2u);
  EXPECT_NE(dyn_cast<IfStmt>(Stmts[0].get()), nullptr);
  const auto *When = dyn_cast<WhenStmt>(Stmts[1].get());
  ASSERT_NE(When, nullptr);
  EXPECT_EQ(When->elseBlock(), nullptr);
}

TEST(ParserTest, CallWithArguments) {
  std::unique_ptr<Program> P = compileOK(
      "program t;"
      "method main() { call f(1, 2 + 3); }"
      "method f(a, b) { branch x; }");
  const auto *Call =
      dyn_cast<CallStmt>(P->methods()[0]->body()->stmts()[0].get());
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->callee(), "f");
  EXPECT_EQ(Call->args().size(), 2u);
}

TEST(ParserTest, PickArms) {
  std::unique_ptr<Program> P = compileOK(
      "program t; method main() {"
      "  pick { weight 3 { branch a; } weight 1 { branch b; } }"
      "}");
  const auto *Pick =
      dyn_cast<PickStmt>(P->methods()[0]->body()->stmts()[0].get());
  ASSERT_NE(Pick, nullptr);
  EXPECT_EQ(Pick->arms().size(), 2u);
  EXPECT_EQ(Pick->totalWeight(), 4u);
}

TEST(ParserTest, ErrorMissingSemicolon) {
  std::string Diags =
      compileFail("program t; method main() { branch a }");
  EXPECT_NE(Diags.find("error"), std::string::npos);
}

TEST(ParserTest, ErrorUnterminatedBlock) {
  std::string Diags = compileFail("program t; method main() { branch a;");
  EXPECT_NE(Diags.find("unterminated block"), std::string::npos);
}

TEST(ParserTest, ErrorProbabilityOutOfRange) {
  std::string Diags =
      compileFail("program t; method main() { if 1.5 { branch a; } }");
  EXPECT_NE(Diags.find("probability"), std::string::npos);
}

TEST(ParserTest, ErrorEmptyPick) {
  std::string Diags =
      compileFail("program t; method main() { pick { } }");
  EXPECT_NE(Diags.find("at least one arm"), std::string::npos);
}

TEST(ParserTest, ErrorMissingProgramKeyword) {
  std::string Diags = compileFail("method main() { branch a; }");
  EXPECT_NE(Diags.find("'program'"), std::string::npos);
}

TEST(ParserTest, DiagnosticCarriesLocation) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P =
      parseProgram("program t;\nmethod main() {\n  bogus;\n}", Diags);
  EXPECT_EQ(P, nullptr);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics()[0].Loc.Line, 3u);
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(SemaTest, AssignsMethodIndicesAndEntry) {
  std::unique_ptr<Program> P = compileOK(
      "program t;"
      "method helper() { branch h; }"
      "method main() { call helper(); }");
  EXPECT_EQ(P->entryIndex(), 1u);
  EXPECT_EQ(P->methods()[0]->methodIndex(), 0u);
  EXPECT_EQ(P->methods()[1]->methodIndex(), 1u);
}

TEST(SemaTest, AssignsDistinctSiteOffsets) {
  std::unique_ptr<Program> P = compileOK(
      "program t; method main() {"
      "  branch a; if 0.5 { branch b; } when (1) { branch c; }"
      "}");
  const auto &Stmts = P->methods()[0]->body()->stmts();
  const auto *A = cast<BranchStmt>(Stmts[0].get());
  const auto *If = cast<IfStmt>(Stmts[1].get());
  const auto *When = cast<WhenStmt>(Stmts[2].get());
  const auto *B = cast<BranchStmt>(If->thenBlock()->stmts()[0].get());
  const auto *C = cast<BranchStmt>(When->thenBlock()->stmts()[0].get());
  std::vector<uint32_t> Offsets = {A->siteOffset(), If->siteOffset(),
                                   B->siteOffset(), When->siteOffset(),
                                   C->siteOffset()};
  std::sort(Offsets.begin(), Offsets.end());
  EXPECT_TRUE(std::adjacent_find(Offsets.begin(), Offsets.end()) ==
              Offsets.end())
      << "site offsets must be unique within a method";
  EXPECT_EQ(P->methods()[0]->numSites(), 5u);
}

TEST(SemaTest, AssignsLoopIdsProgramWide) {
  std::unique_ptr<Program> P = compileOK(
      "program t;"
      "method f() { loop times 2 { branch a; } }"
      "method main() { loop times 3 { branch b; } call f(); }");
  EXPECT_EQ(P->numLoops(), 2u);
  const auto *L0 = cast<LoopStmt>(P->methods()[0]->body()->stmts()[0].get());
  const auto *L1 = cast<LoopStmt>(P->methods()[1]->body()->stmts()[0].get());
  EXPECT_NE(L0->loopId(), L1->loopId());
}

TEST(SemaTest, ResolvesParamsAndLoopVars) {
  std::unique_ptr<Program> P = compileOK(
      "program t;"
      "method f(n) { loop i times n { when (i % 2 == 0) { branch a; } } }"
      "method main() { call f(4); }");
  const MethodDecl &F = *P->methods()[0];
  EXPECT_EQ(F.numSlots(), 2u); // n + i
}

TEST(SemaTest, LoopVarShadowsParam) {
  std::unique_ptr<Program> P = compileOK(
      "program t;"
      "method f(x) { loop x times 3 { when (x > 0) { branch a; } } }"
      "method main() { call f(9); }");
  const auto *Loop =
      cast<LoopStmt>(P->methods()[0]->body()->stmts()[0].get());
  const auto *When = cast<WhenStmt>(Loop->body()->stmts()[0].get());
  const auto *Cond = cast<BinaryExpr>(When->cond());
  const auto *Ref = cast<ParamRefExpr>(Cond->lhs());
  EXPECT_EQ(Ref->slot(), Loop->varSlot());
  EXPECT_NE(Ref->slot(), 0u); // not the parameter slot
}

TEST(SemaTest, ErrorNoMain) {
  std::string Diags = compileFail("program t; method f() { branch a; }");
  EXPECT_NE(Diags.find("no 'main'"), std::string::npos);
}

TEST(SemaTest, ErrorMainWithParams) {
  std::string Diags =
      compileFail("program t; method main(x) { branch a; }");
  EXPECT_NE(Diags.find("must not take parameters"), std::string::npos);
}

TEST(SemaTest, ErrorDuplicateMethod) {
  std::string Diags = compileFail(
      "program t; method main() { branch a; } method main() { branch b; }");
  EXPECT_NE(Diags.find("duplicate method"), std::string::npos);
}

TEST(SemaTest, ErrorUndefinedCallee) {
  std::string Diags =
      compileFail("program t; method main() { call ghost(); }");
  EXPECT_NE(Diags.find("undefined method 'ghost'"), std::string::npos);
}

TEST(SemaTest, ErrorArityMismatch) {
  std::string Diags = compileFail(
      "program t; method f(a) { branch x; } method main() { call f(); }");
  EXPECT_NE(Diags.find("expects 1 argument"), std::string::npos);
}

TEST(SemaTest, ErrorUnknownName) {
  std::string Diags = compileFail(
      "program t; method main() { loop times zz { branch a; } }");
  EXPECT_NE(Diags.find("unknown name 'zz'"), std::string::npos);
}

TEST(SemaTest, ErrorDuplicateParam) {
  std::string Diags = compileFail(
      "program t; method f(a, a) { branch x; } method main() { call f(1, 2); }");
  EXPECT_NE(Diags.find("duplicate parameter"), std::string::npos);
}

TEST(SemaTest, ErrorLoopVarOutOfScope) {
  std::string Diags = compileFail(
      "program t; method main() { loop i times 2 { branch a; } "
      "when (i > 0) { branch b; } }");
  EXPECT_NE(Diags.find("unknown name 'i'"), std::string::npos);
}
