//===- tests/WorkloadsTest.cpp - Workload suite tests --------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"
#include "lang/Diagnostics.h"
#include "lang/Sema.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace opd;

TEST(WorkloadsTest, EightStandardWorkloads) {
  const std::vector<Workload> &All = standardWorkloads();
  ASSERT_EQ(All.size(), 8u);
  EXPECT_EQ(All[0].Name, "compress");
  EXPECT_EQ(All.back().Name, "jlex");
}

TEST(WorkloadsTest, FindByName) {
  EXPECT_NE(findWorkload("db"), nullptr);
  EXPECT_NE(findWorkload("mpegaudio"), nullptr);
  EXPECT_EQ(findWorkload("nonexistent"), nullptr);
}

TEST(WorkloadsTest, AllSourcesCompileAtVariousScales) {
  for (const Workload &W : standardWorkloads()) {
    for (double Scale : {0.1, 0.5, 1.0}) {
      DiagnosticEngine Diags;
      std::unique_ptr<Program> P = compileProgram(W.Source(Scale), Diags);
      EXPECT_TRUE(P != nullptr)
          << W.Name << " @ scale " << Scale << ":\n" << Diags.renderAll();
    }
  }
}

TEST(WorkloadsTest, ExecutionIsDeterministic) {
  const Workload *W = findWorkload("jess");
  ASSERT_NE(W, nullptr);
  ExecutionResult A = executeWorkload(*W, 0.1);
  ExecutionResult B = executeWorkload(*W, 0.1);
  ASSERT_EQ(A.Branches.size(), B.Branches.size());
  for (uint64_t I = 0; I != A.Branches.size(); ++I)
    ASSERT_EQ(A.Branches[I], B.Branches[I]);
  ASSERT_EQ(A.CallLoop.size(), B.CallLoop.size());
}

TEST(WorkloadsTest, ScaleShrinksTraces) {
  const Workload *W = findWorkload("compress");
  ExecutionResult Small = executeWorkload(*W, 0.25);
  ExecutionResult Full = executeWorkload(*W, 1.0);
  EXPECT_LT(Small.Branches.size(), Full.Branches.size());
  EXPECT_GT(Small.Branches.size(), 0u);
}

TEST(WorkloadsTest, NoWorkloadHitsResourceLimits) {
  for (const Workload &W : standardWorkloads()) {
    ExecutionResult R = executeWorkload(W, 1.0);
    EXPECT_FALSE(R.Stats.HaltedByFuel) << W.Name;
    EXPECT_FALSE(R.Stats.HaltedByDepth) << W.Name;
    EXPECT_EQ(R.Stats.DivByZero, 0u) << W.Name;
  }
}

TEST(WorkloadsTest, TraceSizesInExpectedRanges) {
  // Keep the suite's scale sane: every benchmark 100K..3M dynamic
  // branches, compress the largest (as in the paper).
  uint64_t CompressSize = 0, LargestOther = 0;
  for (const Workload &W : standardWorkloads()) {
    ExecutionResult R = executeWorkload(W, 1.0);
    EXPECT_GE(R.Branches.size(), 100000u) << W.Name;
    EXPECT_LE(R.Branches.size(), 3000000u) << W.Name;
    EXPECT_LE(R.Branches.numSites(), 512u) << W.Name;
    if (W.Name == "compress")
      CompressSize = R.Branches.size();
    else
      LargestOther = std::max(LargestOther, R.Branches.size());
  }
  EXPECT_GT(CompressSize, LargestOther);
}

TEST(WorkloadsTest, RecursionPresentWhereExpected) {
  // jess, raytrace, and javac exercise recursion; compress, db,
  // mpegaudio, jack, and jlex do not (Table 1(a) character).
  for (const Workload &W : standardWorkloads()) {
    ExecutionResult R = executeWorkload(W, 0.5);
    bool ExpectRecursion =
        W.Name == "jess" || W.Name == "raytrace" || W.Name == "javac";
    if (ExpectRecursion) {
      EXPECT_GT(R.Stats.RecursionRoots, 0u) << W.Name;
    } else {
      EXPECT_EQ(R.Stats.RecursionRoots, 0u) << W.Name;
    }
  }
}

TEST(WorkloadsTest, BaselinePhaseCountsDecayWithMPL) {
  for (const Workload &W : standardWorkloads()) {
    ExecutionResult R = executeWorkload(W, 1.0);
    std::vector<BaselineSolution> Sols = computeBaselines(
        R.CallLoop, R.Branches.size(), {1000, 10000, 100000});
    EXPECT_GE(Sols[0].numPhases(), Sols[1].numPhases()) << W.Name;
    EXPECT_GE(Sols[1].numPhases(), Sols[2].numPhases()) << W.Name;
    // At least one phase at small MPL in every benchmark.
    EXPECT_GT(Sols[0].numPhases(), 0u) << W.Name;
  }
}

TEST(WorkloadsTest, LargeMPLDoesNotDegenerateToWholeTrace) {
  // The paper notes that a single whole-trace phase makes comparisons
  // meaningless; the workloads are shaped to avoid that at 100K.
  for (const Workload &W : standardWorkloads()) {
    ExecutionResult R = executeWorkload(W, 1.0);
    std::vector<BaselineSolution> Sols =
        computeBaselines(R.CallLoop, R.Branches.size(), {100000});
    for (const PhaseInterval &P : Sols[0].phases())
      EXPECT_LT(P.length(), R.Branches.size() * 9 / 10) << W.Name;
  }
}
