//===- tests/BaselineTest.cpp - Oracle tests -----------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"
#include "baseline/InstanceTree.h"
#include "lang/Diagnostics.h"
#include "lang/Sema.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

/// Compact builder for hand-written call-loop traces.
struct TraceBuilder {
  CallLoopTrace Trace;
  uint64_t Total = 0;

  TraceBuilder &loopEnter(uint32_t Id, uint64_t Offset) {
    Trace.append(CallLoopEventKind::LoopEnter, Id, Offset);
    return *this;
  }
  TraceBuilder &loopExit(uint32_t Id, uint64_t Offset) {
    Trace.append(CallLoopEventKind::LoopExit, Id, Offset);
    return *this;
  }
  TraceBuilder &methodEnter(uint32_t Id, uint64_t Offset) {
    Trace.append(CallLoopEventKind::MethodEnter, Id, Offset);
    return *this;
  }
  TraceBuilder &methodExit(uint32_t Id, uint64_t Offset) {
    Trace.append(CallLoopEventKind::MethodExit, Id, Offset);
    return *this;
  }

  InstanceTree tree(uint64_t TotalElements) {
    Total = TotalElements;
    return InstanceTree::build(Trace, TotalElements);
  }
};

ExecutionResult runSource(const std::string &Source, uint64_t Seed = 1) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.renderAll();
  InterpreterOptions Options;
  Options.Seed = Seed;
  return runProgram(*P, Options);
}

} // namespace

//===----------------------------------------------------------------------===//
// InstanceTree
//===----------------------------------------------------------------------===//

TEST(InstanceTreeTest, BuildsNestedStructure) {
  TraceBuilder B;
  B.methodEnter(0, 0)
      .loopEnter(0, 10)
      .loopEnter(1, 20)
      .loopExit(1, 40)
      .loopExit(0, 50)
      .methodExit(0, 60);
  InstanceTree Tree = B.tree(60);
  ASSERT_EQ(Tree.size(), 4u); // root + method + 2 loops
  const RepetitionInstance &Root = Tree.root();
  ASSERT_EQ(Root.Children.size(), 1u);
  const RepetitionInstance &Main = Tree.node(Root.Children[0]);
  EXPECT_EQ(Main.TheKind, RepetitionInstance::Kind::Method);
  EXPECT_EQ(Main.Begin, 0u);
  EXPECT_EQ(Main.End, 60u);
  ASSERT_EQ(Main.Children.size(), 1u);
  const RepetitionInstance &Outer = Tree.node(Main.Children[0]);
  EXPECT_EQ(Outer.TheKind, RepetitionInstance::Kind::Loop);
  EXPECT_EQ(Outer.span(), 40u);
  ASSERT_EQ(Outer.Children.size(), 1u);
  EXPECT_EQ(Tree.node(Outer.Children[0]).span(), 20u);
}

TEST(InstanceTreeTest, MarksRecursionRoots) {
  TraceBuilder B;
  B.methodEnter(0, 0)   // main
      .methodEnter(5, 2)  // f        <- recursion root
      .methodEnter(5, 4)  // f (nested)
      .methodExit(5, 6)
      .methodExit(5, 8)
      .methodExit(0, 10);
  InstanceTree Tree = B.tree(10);
  unsigned Roots = 0;
  for (const RepetitionInstance &Node : Tree.nodes())
    Roots += Node.IsRecursionRoot ? 1 : 0;
  EXPECT_EQ(Roots, 1u);
  // The root is the outer f instance (span 6), not the inner (span 2).
  for (const RepetitionInstance &Node : Tree.nodes()) {
    if (Node.IsRecursionRoot) {
      EXPECT_EQ(Node.span(), 6u);
    }
  }
}

TEST(InstanceTreeTest, ClosesUnbalancedTraceAtEnd) {
  TraceBuilder B;
  B.methodEnter(0, 0).loopEnter(1, 5); // never exited (fuel stop)
  InstanceTree Tree = B.tree(100);
  for (const RepetitionInstance &Node : Tree.nodes())
    EXPECT_LE(Node.End, 100u);
  EXPECT_EQ(Tree.node(Tree.root().Children[0]).End, 100u);
}

TEST(InstanceTreeTest, SiblingOrderPreserved) {
  TraceBuilder B;
  B.methodEnter(0, 0);
  for (uint32_t I = 0; I != 5; ++I) {
    B.loopEnter(I, I * 10 + 1);
    B.loopExit(I, I * 10 + 9);
  }
  B.methodExit(0, 50);
  InstanceTree Tree = B.tree(50);
  const RepetitionInstance &Main =
      Tree.node(Tree.root().Children[0]);
  ASSERT_EQ(Main.Children.size(), 5u);
  for (size_t I = 1; I != 5; ++I)
    EXPECT_LT(Tree.node(Main.Children[I - 1]).Begin,
              Tree.node(Main.Children[I]).Begin);
}

//===----------------------------------------------------------------------===//
// Phase selection
//===----------------------------------------------------------------------===//

TEST(BaselineTest, LoopMeetingMPLIsAPhase) {
  TraceBuilder B;
  B.methodEnter(0, 0).loopEnter(0, 10).loopExit(0, 110).methodExit(0, 120);
  BaselineSolution Sol = computeBaseline(B.tree(120), /*MPL=*/100);
  ASSERT_EQ(Sol.numPhases(), 1u);
  EXPECT_EQ(Sol.phases()[0], (PhaseInterval{10, 110}));
}

TEST(BaselineTest, LoopBelowMPLIsNotAPhase) {
  TraceBuilder B;
  B.methodEnter(0, 0).loopEnter(0, 10).loopExit(0, 80).methodExit(0, 90);
  BaselineSolution Sol = computeBaseline(B.tree(90), /*MPL=*/100);
  EXPECT_EQ(Sol.numPhases(), 0u);
  EXPECT_DOUBLE_EQ(Sol.fractionInPhase(), 0.0);
}

TEST(BaselineTest, InnermostQualifyingLoopWins) {
  // Inner loop (span 150) inside outer (span 400); both >= MPL=100:
  // innermost-first selects the inner one only.
  TraceBuilder B;
  B.methodEnter(0, 0)
      .loopEnter(0, 10)
      .loopEnter(1, 100)
      .loopExit(1, 250)
      .loopExit(0, 410)
      .methodExit(0, 420);
  BaselineSolution Sol = computeBaseline(B.tree(420), /*MPL=*/100);
  ASSERT_EQ(Sol.numPhases(), 1u);
  EXPECT_EQ(Sol.phases()[0], (PhaseInterval{100, 250}));
}

TEST(BaselineTest, InnerTooSmallFallsBackToOuter) {
  TraceBuilder B;
  B.methodEnter(0, 0)
      .loopEnter(0, 10)
      .loopEnter(1, 100)
      .loopExit(1, 150) // span 50 < MPL
      .loopExit(0, 410)
      .methodExit(0, 420);
  BaselineSolution Sol = computeBaseline(B.tree(420), /*MPL=*/100);
  ASSERT_EQ(Sol.numPhases(), 1u);
  EXPECT_EQ(Sol.phases()[0], (PhaseInterval{10, 410}));
}

TEST(BaselineTest, PerfectNestChainsIntoOnePhase) {
  // Executions of inner loop 1 separated by exactly one element (the
  // outer back edge): chained into a single CRI covering all of them.
  TraceBuilder B;
  B.methodEnter(0, 0).loopEnter(0, 0);
  uint64_t Offset = 0;
  for (int I = 0; I != 4; ++I) {
    B.loopEnter(1, Offset);
    Offset += 60; // 60 elements per inner execution
    B.loopExit(1, Offset);
    Offset += 1; // one outer-loop element between executions
  }
  B.loopExit(0, Offset).methodExit(0, Offset);
  BaselineSolution Sol = computeBaseline(B.tree(Offset), /*MPL=*/100);
  ASSERT_EQ(Sol.numPhases(), 1u);
  // The chain spans from the first inner enter to the last inner exit.
  EXPECT_EQ(Sol.phases()[0].Begin, 0u);
  EXPECT_EQ(Sol.phases()[0].End, Offset - 1);
}

TEST(BaselineTest, SeparatedExecutionsAreDistinctPhases) {
  // Gap of 2 elements between executions: no chaining; each execution
  // (span 120 >= MPL) is its own phase.
  TraceBuilder B;
  B.methodEnter(0, 0).loopEnter(0, 0);
  uint64_t Offset = 0;
  for (int I = 0; I != 3; ++I) {
    B.loopEnter(1, Offset);
    Offset += 120;
    B.loopExit(1, Offset);
    Offset += 2;
  }
  B.loopExit(0, Offset).methodExit(0, Offset);
  BaselineSolution Sol = computeBaseline(B.tree(Offset), /*MPL=*/100);
  EXPECT_EQ(Sol.numPhases(), 3u);
}

TEST(BaselineTest, AdjacentMethodInvocationsChain) {
  // Repeated invocations of method 7 at distance 1: one merged CRI that
  // meets the MPL even though each invocation is below it.
  TraceBuilder B;
  B.methodEnter(0, 0);
  uint64_t Offset = 0;
  for (int I = 0; I != 5; ++I) {
    B.methodEnter(7, Offset);
    Offset += 30;
    B.methodExit(7, Offset);
    Offset += 1;
  }
  B.methodExit(0, Offset);
  BaselineSolution Sol = computeBaseline(B.tree(Offset), /*MPL=*/100);
  ASSERT_EQ(Sol.numPhases(), 1u);
  EXPECT_EQ(Sol.phases()[0].length(), 154u); // 5*30 + 4 gaps
}

TEST(BaselineTest, LoneNonRecursiveInvocationIsNotAPhase) {
  TraceBuilder B;
  B.methodEnter(0, 0).methodEnter(7, 10).methodExit(7, 400).methodExit(
      0, 410);
  BaselineSolution Sol = computeBaseline(B.tree(410), /*MPL=*/100);
  EXPECT_EQ(Sol.numPhases(), 0u);
}

TEST(BaselineTest, RecursionRootIsAPhase) {
  TraceBuilder B;
  B.methodEnter(0, 0)
      .methodEnter(7, 10)  // root
      .methodEnter(7, 50)
      .methodExit(7, 200)
      .methodExit(7, 300)
      .methodExit(0, 310);
  BaselineSolution Sol = computeBaseline(B.tree(310), /*MPL=*/100);
  ASSERT_EQ(Sol.numPhases(), 1u);
  EXPECT_EQ(Sol.phases()[0], (PhaseInterval{10, 300}));
}

TEST(BaselineTest, PhasesAreSortedAndDisjoint) {
  ExecutionResult R = runSource(
      "program t; method main() {"
      "  loop a times 50 { branch x; }"
      "  branch s0; branch s1;"
      "  loop b times 80 { branch y; loop c times 3 { branch z; } }"
      "  branch s2;"
      "  loop d times 40 { branch w; }"
      "}");
  for (uint64_t MPL : {10ull, 50ull, 100ull, 500ull}) {
    std::vector<BaselineSolution> Sols =
        computeBaselines(R.CallLoop, R.Branches.size(), {MPL});
    uint64_t PrevEnd = 0;
    for (const PhaseInterval &P : Sols[0].phases()) {
      EXPECT_LE(PrevEnd, P.Begin);
      EXPECT_LT(P.Begin, P.End);
      EXPECT_GE(P.length(), MPL);
      PrevEnd = P.End;
    }
  }
}

TEST(BaselineTest, PhaseCountDecreasesWithMPL) {
  ExecutionResult R = runSource(
      "program t; method main() {"
      "  loop outer times 10 {"
      "    loop inner times 30 { branch a; branch b; }"
      "    branch s0; branch s1;"
      "  }"
      "}");
  std::vector<BaselineSolution> Sols = computeBaselines(
      R.CallLoop, R.Branches.size(), {10, 60, 500, 100000});
  EXPECT_GE(Sols[0].numPhases(), Sols[1].numPhases());
  EXPECT_GE(Sols[1].numPhases(), Sols[2].numPhases());
  EXPECT_GE(Sols[2].numPhases(), Sols[3].numPhases());
}

TEST(BaselineTest, StatesMatchPhases) {
  TraceBuilder B;
  B.methodEnter(0, 0).loopEnter(0, 20).loopExit(0, 170).methodExit(0, 200);
  BaselineSolution Sol = computeBaseline(B.tree(200), /*MPL=*/100);
  EXPECT_EQ(Sol.states().size(), 200u);
  EXPECT_EQ(Sol.states().at(19), PhaseState::Transition);
  EXPECT_EQ(Sol.states().at(20), PhaseState::InPhase);
  EXPECT_EQ(Sol.states().at(169), PhaseState::InPhase);
  EXPECT_EQ(Sol.states().at(170), PhaseState::Transition);
  EXPECT_DOUBLE_EQ(Sol.fractionInPhase(), 150.0 / 200.0);
}

TEST(BaselineTest, EmptyTraceYieldsNoPhases) {
  CallLoopTrace Empty;
  std::vector<BaselineSolution> Sols = computeBaselines(Empty, 0, {1000});
  EXPECT_EQ(Sols[0].numPhases(), 0u);
  EXPECT_EQ(Sols[0].states().size(), 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end properties over interpreted programs
//===----------------------------------------------------------------------===//

class BaselinePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BaselinePropertyTest, InvariantsOnRandomizedPrograms) {
  // A program whose structure flexes with the seed-driven noise.
  ExecutionResult R = runSource(
      "program t; method main() {"
      "  loop reps times 12 {"
      "    if 0.5 { loop a times 40 { branch x; branch y flip 0.5; } }"
      "    else { call f(6); }"
      "    branch s0; branch s1;"
      "  }"
      "}"
      "method f(d) { branch a; when (d > 0) { loop g times 8 { branch b; }"
      " call f(d - 1); } }",
      GetParam());
  for (uint64_t MPL : {20ull, 100ull, 1000ull}) {
    std::vector<BaselineSolution> Sols =
        computeBaselines(R.CallLoop, R.Branches.size(), {MPL});
    const BaselineSolution &Sol = Sols[0];
    EXPECT_EQ(Sol.states().size(), R.Branches.size());
    uint64_t PrevEnd = 0;
    for (const PhaseInterval &P : Sol.phases()) {
      EXPECT_LE(PrevEnd, P.Begin);
      EXPECT_LT(P.Begin, P.End);
      EXPECT_LE(P.End, R.Branches.size());
      EXPECT_GE(P.length(), MPL);
      PrevEnd = P.End;
    }
    double Frac = Sol.fractionInPhase();
    EXPECT_GE(Frac, 0.0);
    EXPECT_LE(Frac, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselinePropertyTest,
                         testing::Values(1, 7, 42, 1234, 99999));
