//===- tests/ProtocolCheckTest.cpp - Protocol model checker tests ---------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// Positive proofs: the shipped protocol model satisfies every invariant,
// matches the real ServeSession on every explored edge, matches the
// normative tables of docs/SERVING.md, and survives a fixed-seed
// model-guided fuzz budget.
//
// Negative proofs (the checks have teeth): each invariant is broken by a
// targeted table mutation — erased, duplicated, or retargeted rules and
// a fault-injected I/O discipline — and the matching diagnostic code
// must fire.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProtocolCheck.h"
#include "analysis/ProtocolConformance.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace opd;

namespace {

bool hasCode(const DiagnosticEngine &Diags, const std::string &Code) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Code == Code)
      return true;
  return false;
}

/// Asserts the model checker reports \p Code (and nothing makes the
/// engine look clean).
void expectViolation(ProtocolModel &M, const std::string &Code,
                     ProtocolCheckOptions Options = {}) {
  DiagnosticEngine Diags;
  checkProtocolModel(M, Options, Diags);
  EXPECT_TRUE(hasCode(Diags, Code))
      << "expected [" << Code << "], got:\n"
      << Diags.renderAll();
}

/// Erases every rule matching (From, Event); returns the count removed.
size_t eraseRules(ProtocolModel &M, ProtoState From, ProtoEvent Ev) {
  std::vector<TransitionRule> &Rules = M.rules();
  size_t Before = Rules.size();
  Rules.erase(std::remove_if(Rules.begin(), Rules.end(),
                             [&](const TransitionRule &R) {
                               return R.From == From && R.Event == Ev;
                             }),
              Rules.end());
  return Before - Rules.size();
}

TransitionRule *findRule(ProtocolModel &M, ProtoState From, ProtoEvent Ev) {
  for (TransitionRule &R : M.rules())
    if (R.From == From && R.Event == Ev)
      return &R;
  return nullptr;
}

std::string readSourceFile(const std::string &RelPath) {
  std::ifstream In(std::string(OPD_SOURCE_DIR) + "/" + RelPath);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

//===----------------------------------------------------------------------===//
// Positive: invariants hold on the shipped model
//===----------------------------------------------------------------------===//

TEST(ProtocolCheck, InvariantsHoldOnDefaultModel) {
  ProtocolModel M;
  DiagnosticEngine Diags;
  ProtoExploration Ex = checkProtocolModel(M, {}, Diags);
  EXPECT_TRUE(Diags.empty()) << Diags.renderAll();
  EXPECT_TRUE(Ex.Complete);
  EXPECT_FALSE(Ex.States.empty());
  EXPECT_FALSE(Ex.Edges.empty());
}

TEST(ProtocolCheck, InvariantsHoldAcrossParameterSpace) {
  // Every guard boundary: batch 1 (every pump drains), tiny and wide
  // watermarks, single-element and batch-crossing frames.
  for (uint32_t Batch : {1u, 2u, 3u, 5u})
    for (uint32_t Watermark : {2u, 4u, 8u, 13u})
      for (uint32_t MaxFrame : {1u, 3u, 7u}) {
        ProtocolParams P;
        P.Batch = Batch;
        P.HighWatermark = Watermark;
        P.MaxFrameElements = MaxFrame;
        ProtocolModel M(P);
        DiagnosticEngine Diags;
        checkProtocolModel(M, {}, Diags);
        EXPECT_TRUE(Diags.empty())
            << "batch=" << Batch << " watermark=" << Watermark
            << " max-frame=" << MaxFrame << ":\n"
            << Diags.renderAll();
      }
}

TEST(ProtocolCheck, ExplorationCoversTheFullProduct) {
  ProtocolModel M;
  ProtoExploration Ex = exploreProtocol(M);
  ASSERT_TRUE(Ex.Complete);

  // Every lifecycle state is reachable.
  bool SeenState[NumProtoStates] = {};
  bool SeenPaused = false, SeenUnpaused = false;
  uint32_t MaxOcc = 0;
  for (const ProtoConfigState &S : Ex.States) {
    SeenState[static_cast<unsigned>(S.St)] = true;
    (S.ReadPaused ? SeenPaused : SeenUnpaused) = true;
    MaxOcc = std::max(MaxOcc, S.Occupancy);
  }
  for (unsigned I = 0; I != NumProtoStates; ++I)
    EXPECT_TRUE(SeenState[I])
        << ProtocolModel::stateName(static_cast<ProtoState>(I));
  EXPECT_TRUE(SeenPaused);
  EXPECT_TRUE(SeenUnpaused);
  // Occupancy reaches the bound: a frame landing just under the
  // watermark can overshoot it by MaxFrameElements - 1.
  EXPECT_EQ(MaxOcc,
            M.params().HighWatermark - 1 + M.params().MaxFrameElements);

  // Witnesses really lead where they claim: replay each path.
  for (size_t I = 0; I != Ex.States.size(); ++I) {
    ProtoConfigState S;
    for (const ProtoStep &Step : Ex.Witness[I]) {
      ProtocolModel::StepResult Res = M.step(S, Step.Event, Step.Count);
      ASSERT_NE(Res.Rule, nullptr);
      S = Res.Next;
    }
    EXPECT_TRUE(S == Ex.States[I]) << "witness " << I << " diverges";
  }
}

TEST(ProtocolCheck, EveryNonTerminalEventIsExplored) {
  ProtocolModel M;
  ProtoExploration Ex = exploreProtocol(M);
  bool SeenEvent[NumProtoEvents] = {};
  for (const ProtoEdge &E : Ex.Edges)
    SeenEvent[static_cast<unsigned>(E.Step.Event)] = true;
  for (unsigned I = 0; I != NumProtoEvents; ++I)
    EXPECT_TRUE(SeenEvent[I])
        << ProtocolModel::eventName(static_cast<ProtoEvent>(I));
}

//===----------------------------------------------------------------------===//
// Negative: each invariant violation is detected
//===----------------------------------------------------------------------===//

TEST(ProtocolCheck, MissingTransitionDetected) {
  ProtocolModel M;
  ASSERT_GT(eraseRules(M, ProtoState::Streaming, ProtoEvent::FinishOk), 0u);
  expectViolation(M, "missing-transition");
}

TEST(ProtocolCheck, AmbiguousTransitionDetected) {
  ProtocolModel M;
  TransitionRule *R =
      findRule(M, ProtoState::Streaming, ProtoEvent::ElementsOk);
  ASSERT_NE(R, nullptr);
  M.rules().push_back(*R); // Two applicable rules for the same event.
  expectViolation(M, "ambiguous-transition");
}

TEST(ProtocolCheck, MalformedRuleDetected) {
  ProtocolModel M;
  TransitionRule *R =
      findRule(M, ProtoState::Streaming, ProtoEvent::ElementsOk);
  ASSERT_NE(R, nullptr);
  R->Err = ServeError::BadFrame; // Error code on a non-failing rule.
  expectViolation(M, "malformed-rule");
}

TEST(ProtocolCheck, UnreachableStateDetected) {
  ProtocolModel M;
  // Reject every handshake: Streaming, Draining, and Done all become
  // unreachable.
  TransitionRule *R = findRule(M, ProtoState::AwaitHello, ProtoEvent::HelloOk);
  ASSERT_NE(R, nullptr);
  R->To = ProtoState::Failed;
  R->Err = ServeError::BadMagic;
  R->Occ = OccEffect::Clear;
  R->EmitHelloAck = false;
  expectViolation(M, "unreachable-state");
}

TEST(ProtocolCheck, StuckStateDetected) {
  ProtocolModel M;
  // Make Draining fully absorbing: every event — pumps, shutdowns, and
  // the client-frame rejections that would otherwise escape to Failed —
  // spins in place, so no offered path reaches a terminal state.
  for (TransitionRule &R : M.rules())
    if (R.From == ProtoState::Draining) {
      R.To = ProtoState::Draining;
      R.Err = ServeError::None;
      R.Occ = OccEffect::None;
      R.EmitFinished = false;
    }
  expectViolation(M, "stuck-state");
}

TEST(ProtocolCheck, UnboundedDrainDetected) {
  ProtocolModel M;
  // A drain request that leaves the session Streaming: shutdown no
  // longer closes the session in one step.
  TransitionRule *R = findRule(M, ProtoState::Streaming, ProtoEvent::Drain);
  ASSERT_NE(R, nullptr);
  R->To = ProtoState::Streaming;
  R->Err = ServeError::None;
  R->Occ = OccEffect::None;
  expectViolation(M, "unbounded-drain");
}

TEST(ProtocolCheck, BufferLeakDetected) {
  ProtocolModel M;
  // Eviction that forgets to clear the pending buffer: a terminal
  // configuration retains elements.
  TransitionRule *R = findRule(M, ProtoState::Streaming, ProtoEvent::Evict);
  ASSERT_NE(R, nullptr);
  R->Occ = OccEffect::None;
  expectViolation(M, "buffer-leak");
}

TEST(ProtocolCheck, ReadWhileSaturatedViolatesWatermark) {
  // Fault injection: a server that keeps reading a saturated session
  // must break the backpressure invariant — this is the proof that the
  // read-pause discipline is load-bearing, not decorative.
  ProtocolModel M;
  ProtocolCheckOptions Options;
  Options.SimulateReadWhileSaturated = true;
  expectViolation(M, "watermark-violation", Options);
}

//===----------------------------------------------------------------------===//
// Conformance: implementation
//===----------------------------------------------------------------------===//

TEST(ProtocolConformance, ImplementationMatchesModel) {
  ProtocolModel M;
  DiagnosticEngine Diags;
  checkImplConformance(M, Diags);
  EXPECT_TRUE(Diags.empty()) << Diags.renderAll();
}

TEST(ProtocolConformance, ImplementationMatchesModelAcrossParams) {
  for (uint32_t Batch : {1u, 4u}) {
    ProtocolParams P;
    P.Batch = Batch;
    P.HighWatermark = 6;
    P.MaxFrameElements = 4;
    ProtocolModel M(P);
    DiagnosticEngine Diags;
    checkImplConformance(M, Diags);
    EXPECT_TRUE(Diags.empty()) << "batch=" << Batch << ":\n"
                               << Diags.renderAll();
  }
}

TEST(ProtocolConformance, ImplDivergenceDetected) {
  ProtocolModel M;
  // Claim the server rejects Finish while Streaming. The real session
  // accepts it, so the replay must report the disagreement.
  TransitionRule *R = findRule(M, ProtoState::Streaming, ProtoEvent::FinishOk);
  ASSERT_NE(R, nullptr);
  R->To = ProtoState::Failed;
  R->Err = ServeError::BadState;
  R->Occ = OccEffect::Clear;
  DiagnosticEngine Diags;
  checkImplConformance(M, Diags);
  EXPECT_TRUE(hasCode(Diags, "impl-divergence")) << Diags.renderAll();
}

//===----------------------------------------------------------------------===//
// Conformance: documentation
//===----------------------------------------------------------------------===//

TEST(ProtocolConformance, ServingDocMatchesModel) {
  std::string Doc = readSourceFile("docs/SERVING.md");
  ASSERT_FALSE(Doc.empty());
  ProtocolModel M;
  DiagnosticEngine Diags;
  checkDocConformance(M, Doc, Diags);
  EXPECT_TRUE(Diags.empty()) << Diags.renderAll();
}

TEST(ProtocolConformance, DocDivergenceDetected) {
  std::string Doc = readSourceFile("docs/SERVING.md");
  ASSERT_FALSE(Doc.empty());
  // Doctor the wire value of the Elements kind.
  size_t Pos = Doc.find("| `Elements` | 2 |");
  ASSERT_NE(Pos, std::string::npos);
  Doc.replace(Pos, 18, "| `Elements` | 6 |");
  ProtocolModel M;
  DiagnosticEngine Diags;
  checkDocConformance(M, Doc, Diags);
  EXPECT_TRUE(hasCode(Diags, "doc-divergence")) << Diags.renderAll();
}

TEST(ProtocolConformance, MissingDocTablesReported) {
  ProtocolModel M;
  DiagnosticEngine Diags;
  checkDocConformance(M, "# Not the serving doc\n\nNo tables here.\n",
                      Diags);
  EXPECT_TRUE(hasCode(Diags, "doc-parse")) << Diags.renderAll();
}

//===----------------------------------------------------------------------===//
// Conformance: model-guided fuzz
//===----------------------------------------------------------------------===//

TEST(ProtocolConformance, FuzzCleanUnderFixedSeedBudget) {
  ProtocolFuzzOptions Options;
  Options.Seed = 7;
  Options.Iterations = 150;
  DiagnosticEngine Diags;
  fuzzProtocolConformance(Options, Diags);
  EXPECT_TRUE(Diags.empty()) << Diags.renderAll();
}

//===----------------------------------------------------------------------===//
// Catalogues
//===----------------------------------------------------------------------===//

TEST(ProtocolModelTest, LegalityVerdicts) {
  ProtocolModel M;
  EXPECT_EQ(M.legality(ProtoState::AwaitHello, MsgKind::Hello).Err,
            ServeError::None);
  EXPECT_EQ(M.legality(ProtoState::AwaitHello, MsgKind::Hello).To,
            ProtoState::Streaming);
  EXPECT_EQ(M.legality(ProtoState::AwaitHello, MsgKind::Elements).Err,
            ServeError::BadState);
  EXPECT_EQ(M.legality(ProtoState::Streaming, MsgKind::Elements).Err,
            ServeError::None);
  EXPECT_EQ(M.legality(ProtoState::Streaming, MsgKind::Finish).To,
            ProtoState::Draining);
  EXPECT_EQ(M.legality(ProtoState::Draining, MsgKind::Elements).Err,
            ServeError::BadState);
  EXPECT_EQ(M.legality(ProtoState::Streaming, MsgKind::HelloAck).Err,
            ServeError::BadFrame);
}

TEST(ProtocolModelTest, CataloguesMatchWireConstants) {
  std::vector<ProtocolModel::KindInfo> Kinds = ProtocolModel::frameKinds();
  ASSERT_EQ(Kinds.size(), 8u);
  EXPECT_EQ(Kinds.front().Value, uint8_t(MsgKind::Hello));
  EXPECT_EQ(Kinds.back().Value, uint8_t(MsgKind::Error));

  std::vector<ProtocolModel::ErrorInfo> Errs = ProtocolModel::errorCodes();
  ASSERT_EQ(Errs.size(), 10u);
  for (const ProtocolModel::ErrorInfo &E : Errs)
    EXPECT_STREQ(E.Name, serveErrorName(static_cast<ServeError>(E.Value)));
}

} // namespace
