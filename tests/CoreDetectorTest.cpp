//===- tests/CoreDetectorTest.cpp - Analyzer/detector/runner tests ------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"
#include "core/RelatedWork.h"
#include "support/Random.h"
#include "trace/BranchTrace.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

/// Builds a trace of `Blocks` alternating vocabularies: block k emits
/// `BlockLen` elements drawn from sites [k%2 * SitesPerBlock, ...). Two
/// distinct vocabularies produce crisp phase transitions.
BranchTrace makeAlternatingTrace(unsigned Blocks, unsigned BlockLen,
                                 unsigned SitesPerBlock, uint64_t Seed) {
  BranchTrace Trace;
  // Pre-intern all sites so indices are stable.
  for (unsigned S = 0; S != 2 * SitesPerBlock; ++S)
    Trace.internSite(ProfileElement(0, S, true));
  Xoshiro256 Rng(Seed);
  for (unsigned B = 0; B != Blocks; ++B) {
    unsigned Base = (B % 2) * SitesPerBlock;
    for (unsigned I = 0; I != BlockLen; ++I)
      Trace.appendIndex(Base + static_cast<SiteIndex>(
                                   Rng.nextBelow(SitesPerBlock)));
  }
  return Trace;
}

DetectorConfig makeConfig(uint32_t CW, TWPolicyKind Policy,
                          ModelKind Model = ModelKind::UnweightedSet,
                          AnalyzerKind Analyzer = AnalyzerKind::Threshold,
                          double Param = 0.6, uint32_t Skip = 1) {
  DetectorConfig C;
  C.Window.CWSize = CW;
  C.Window.TWSize = CW;
  C.Window.SkipFactor = Skip;
  C.Window.TWPolicy = Policy;
  C.Model = Model;
  C.TheAnalyzer = Analyzer;
  C.AnalyzerParam = Param;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Analyzers
//===----------------------------------------------------------------------===//

TEST(ThresholdAnalyzerTest, BoundaryIsInclusive) {
  ThresholdAnalyzer A(0.6);
  EXPECT_EQ(A.processValue(0.6), PhaseState::InPhase);
  EXPECT_EQ(A.processValue(0.59999), PhaseState::Transition);
  EXPECT_EQ(A.processValue(1.0), PhaseState::InPhase);
  EXPECT_EQ(A.processValue(0.0), PhaseState::Transition);
}

TEST(ThresholdAnalyzerTest, StatelessAcrossCalls) {
  ThresholdAnalyzer A(0.5);
  A.processValue(0.9);
  A.updateStats(0.9);
  A.resetStats();
  EXPECT_EQ(A.processValue(0.4), PhaseState::Transition);
}

TEST(AverageAnalyzerTest, OptimisticEntryWithEmptyStats) {
  AverageAnalyzer A(0.05);
  // No accumulated statistics: any value enters a phase.
  EXPECT_EQ(A.processValue(0.1), PhaseState::InPhase);
}

TEST(AverageAnalyzerTest, DropBelowAverageEndsPhase) {
  AverageAnalyzer A(0.05);
  A.resetStats();
  for (double V : {0.9, 0.9, 0.9, 0.88})
    A.updateStats(V);
  // Mean = 0.895, threshold = 0.845: 0.84 drops out, 0.85 stays in.
  EXPECT_EQ(A.processValue(0.84), PhaseState::Transition);
  EXPECT_EQ(A.processValue(0.85), PhaseState::InPhase);
}

TEST(AverageAnalyzerTest, PaperExample) {
  // "if the running average ... is 0.88 and the delta parameter is 0.02,
  // the analyzer reports a P state for values of 0.86 or higher."
  AverageAnalyzer A(0.02);
  A.updateStats(0.88);
  EXPECT_EQ(A.processValue(0.86), PhaseState::InPhase);
  EXPECT_EQ(A.processValue(0.859), PhaseState::Transition);
}

TEST(AverageAnalyzerTest, ResetStatsForgetsOldPhase) {
  AverageAnalyzer A(0.01);
  A.updateStats(0.95);
  EXPECT_EQ(A.processValue(0.5), PhaseState::Transition);
  A.resetStats();
  EXPECT_EQ(A.processValue(0.5), PhaseState::InPhase); // optimistic again
}

TEST(AverageAnalyzerTest, EntryThresholdExtensionGatesEntry) {
  AverageAnalyzer A(0.05, /*EntryThreshold=*/0.7);
  EXPECT_EQ(A.processValue(0.6), PhaseState::Transition);
  EXPECT_EQ(A.processValue(0.75), PhaseState::InPhase);
}

TEST(AnalyzerFactoryTest, CreatesAndDescribes) {
  std::unique_ptr<Analyzer> T = makeAnalyzer(AnalyzerKind::Threshold, 0.7);
  std::unique_ptr<Analyzer> A = makeAnalyzer(AnalyzerKind::Average, 0.1);
  EXPECT_NE(T->describe().find("threshold"), std::string::npos);
  EXPECT_NE(A->describe().find("average"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// PhaseDetector state machine
//===----------------------------------------------------------------------===//

TEST(PhaseDetectorTest, TransitionUntilWindowsFull) {
  DetectorConfig C = makeConfig(10, TWPolicyKind::Constant);
  std::unique_ptr<PhaseDetector> D = makeDetector(C, 4);
  SiteIndex S = 0;
  // First CW+TW = 20 elements cannot produce P.
  for (int I = 0; I < 19; ++I)
    EXPECT_EQ(D->processBatch(&S, 1), PhaseState::Transition);
  // From the 20th on, a uniform stream is perfectly similar.
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(D->processBatch(&S, 1), PhaseState::InPhase);
}

TEST(PhaseDetectorTest, VocabularyShiftEndsPhase) {
  DetectorConfig C = makeConfig(8, TWPolicyKind::Constant);
  std::unique_ptr<PhaseDetector> D = makeDetector(C, 2);
  SiteIndex A = 0, B = 1;
  bool SawInPhase = false, SawDrop = false;
  for (int I = 0; I < 60; ++I)
    SawInPhase |= D->processBatch(&A, 1) == PhaseState::InPhase;
  EXPECT_TRUE(SawInPhase);
  for (int I = 0; I < 20; ++I)
    SawDrop |= D->processBatch(&B, 1) == PhaseState::Transition;
  EXPECT_TRUE(SawDrop);
}

TEST(PhaseDetectorTest, ReusableAfterReset) {
  DetectorConfig C = makeConfig(6, TWPolicyKind::Adaptive);
  std::unique_ptr<PhaseDetector> D = makeDetector(C, 2);
  SiteIndex S = 0;
  for (int I = 0; I < 40; ++I)
    D->processBatch(&S, 1);
  D->reset();
  EXPECT_EQ(D->state(), PhaseState::Transition);
  // Same fill behavior as a fresh detector.
  for (int I = 0; I < 11; ++I)
    EXPECT_EQ(D->processBatch(&S, 1), PhaseState::Transition);
}

TEST(PhaseDetectorTest, DescribeMentionsEveryPolicy) {
  DetectorConfig C = makeConfig(16, TWPolicyKind::Adaptive,
                                ModelKind::WeightedSet,
                                AnalyzerKind::Average, 0.05);
  std::unique_ptr<PhaseDetector> D = makeDetector(C, 2);
  std::string Desc = D->describe();
  EXPECT_NE(Desc.find("weighted"), std::string::npos);
  EXPECT_NE(Desc.find("adaptive"), std::string::npos);
  EXPECT_NE(Desc.find("cw=16"), std::string::npos);
  EXPECT_NE(Desc.find("average"), std::string::npos);
}

TEST(DetectorConfigTest, FixedIntervalPredicate) {
  DetectorConfig C = makeConfig(100, TWPolicyKind::Constant,
                                ModelKind::UnweightedSet,
                                AnalyzerKind::Threshold, 0.5,
                                /*Skip=*/100);
  EXPECT_TRUE(C.isFixedInterval());
  C.Window.SkipFactor = 1;
  EXPECT_FALSE(C.isFixedInterval());
  C.Window.SkipFactor = 100;
  C.Window.TWPolicy = TWPolicyKind::Adaptive;
  EXPECT_FALSE(C.isFixedInterval());
}

//===----------------------------------------------------------------------===//
// DetectorRunner
//===----------------------------------------------------------------------===//

TEST(DetectorRunnerTest, StatesCoverWholeTrace) {
  BranchTrace Trace = makeAlternatingTrace(6, 500, 5, 1);
  for (uint32_t Skip : {1u, 3u, 7u, 100u}) {
    DetectorConfig C = makeConfig(50, TWPolicyKind::Constant,
                                  ModelKind::UnweightedSet,
                                  AnalyzerKind::Threshold, 0.6, Skip);
    std::unique_ptr<PhaseDetector> D = makeDetector(C, Trace.numSites());
    DetectorRun Run = runDetector(*D, Trace);
    EXPECT_EQ(Run.States.size(), Trace.size()) << "skip=" << Skip;
  }
}

TEST(DetectorRunnerTest, DetectsAlternatingPhases) {
  BranchTrace Trace = makeAlternatingTrace(6, 800, 5, 2);
  DetectorConfig C = makeConfig(60, TWPolicyKind::Adaptive);
  std::unique_ptr<PhaseDetector> D = makeDetector(C, Trace.numSites());
  DetectorRun Run = runDetector(*D, Trace);
  // Six vocabulary blocks should yield roughly six detected phases.
  EXPECT_GE(Run.DetectedPhases.size(), 4u);
  EXPECT_LE(Run.DetectedPhases.size(), 9u);
  // Most of the trace is stable.
  EXPECT_GT(Run.States.numInPhase(), Trace.size() / 2);
}

TEST(DetectorRunnerTest, PhasesAreSortedAndDisjoint) {
  BranchTrace Trace = makeAlternatingTrace(8, 300, 4, 3);
  DetectorConfig C = makeConfig(40, TWPolicyKind::Adaptive,
                                ModelKind::WeightedSet,
                                AnalyzerKind::Average, 0.1);
  std::unique_ptr<PhaseDetector> D = makeDetector(C, Trace.numSites());
  DetectorRun Run = runDetector(*D, Trace);
  for (const std::vector<PhaseInterval> *Phases :
       {&Run.DetectedPhases, &Run.AnchoredPhases}) {
    uint64_t PrevEnd = 0;
    for (const PhaseInterval &P : *Phases) {
      EXPECT_LE(PrevEnd, P.Begin);
      EXPECT_LT(P.Begin, P.End);
      PrevEnd = P.End;
    }
  }
}

TEST(DetectorRunnerTest, AnchoredStartsNeverAfterDetectedStarts) {
  BranchTrace Trace = makeAlternatingTrace(6, 500, 5, 4);
  DetectorConfig C = makeConfig(50, TWPolicyKind::Adaptive);
  std::unique_ptr<PhaseDetector> D = makeDetector(C, Trace.numSites());
  DetectorRun Run = runDetector(*D, Trace);
  ASSERT_EQ(Run.AnchoredPhases.size(), Run.DetectedPhases.size());
  for (size_t I = 0; I != Run.DetectedPhases.size(); ++I) {
    EXPECT_LE(Run.AnchoredPhases[I].Begin, Run.DetectedPhases[I].Begin);
    EXPECT_EQ(Run.AnchoredPhases[I].End, Run.DetectedPhases[I].End);
  }
}

TEST(DetectorRunnerTest, AnchoringRecoversLatePhaseStart) {
  // The detector flags P only after the windows fill; the anchored start
  // should land near the true vocabulary change, well before the
  // detected start.
  BranchTrace Trace = makeAlternatingTrace(2, 2000, 5, 5);
  DetectorConfig C = makeConfig(100, TWPolicyKind::Adaptive);
  std::unique_ptr<PhaseDetector> D = makeDetector(C, Trace.numSites());
  DetectorRun Run = runDetector(*D, Trace);
  ASSERT_FALSE(Run.DetectedPhases.empty());
  // Second block starts at 2000. Find the detected phase starting after
  // that and check its anchored start is earlier (closer to 2000).
  for (size_t I = 0; I != Run.DetectedPhases.size(); ++I) {
    if (Run.DetectedPhases[I].Begin > 2000 &&
        Run.DetectedPhases[I].Begin < 2400) {
      EXPECT_LT(Run.AnchoredPhases[I].Begin, Run.DetectedPhases[I].Begin);
      EXPECT_GE(Run.AnchoredPhases[I].Begin, 1990u);
      return;
    }
  }
  // The phase covering the second block must exist.
  FAIL() << "no detected phase near the second block boundary";
}

TEST(DetectorRunnerTest, SkipFactorBatchesShareState) {
  BranchTrace Trace = makeAlternatingTrace(4, 400, 4, 6);
  DetectorConfig C = makeConfig(40, TWPolicyKind::Constant,
                                ModelKind::UnweightedSet,
                                AnalyzerKind::Threshold, 0.6, /*Skip=*/40);
  std::unique_ptr<PhaseDetector> D = makeDetector(C, Trace.numSites());
  DetectorRun Run = runDetector(*D, Trace);
  // One state per element, but states only change at batch boundaries.
  for (const StateRun &R : Run.States.runs())
    EXPECT_EQ(R.Begin % 40, 0u);
}

//===----------------------------------------------------------------------===//
// Related-work detectors
//===----------------------------------------------------------------------===//

TEST(LuDetectorTest, StableStreamStaysInPhase) {
  LuDetector::Options Opts;
  Opts.SampleSize = 64;
  LuDetector D(Opts);
  BranchTrace Trace = makeAlternatingTrace(1, 64 * 30, 4, 7);
  DetectorRun Run = runDetector(D, Trace);
  // After warmup the stable stream is one long phase.
  EXPECT_GT(Run.States.numInPhase(), Trace.size() / 2);
  EXPECT_LE(Run.DetectedPhases.size(), 2u);
}

TEST(LuDetectorTest, MeanShiftEndsPhase) {
  LuDetector::Options Opts;
  Opts.SampleSize = 64;
  LuDetector D(Opts);
  // Two blocks over disjoint site ranges: the mean site index jumps.
  BranchTrace Trace = makeAlternatingTrace(2, 64 * 20, 8, 8);
  DetectorRun Run = runDetector(D, Trace);
  EXPECT_GE(Run.DetectedPhases.size(), 2u);
}

TEST(DasDetectorTest, StableStreamStaysInPhase) {
  DasDetector::Options Opts;
  Opts.SampleSize = 64;
  Opts.Threshold = 0.8;
  BranchTrace Trace = makeAlternatingTrace(1, 64 * 30, 4, 9);
  DasDetector D(Opts, Trace.numSites());
  DetectorRun Run = runDetector(D, Trace);
  EXPECT_GT(Run.States.numInPhase(), Trace.size() / 2);
}

TEST(DasDetectorTest, VocabularyShiftEndsPhase) {
  DasDetector::Options Opts;
  Opts.SampleSize = 64;
  Opts.Threshold = 0.8;
  BranchTrace Trace = makeAlternatingTrace(4, 64 * 10, 6, 10);
  DasDetector D(Opts, Trace.numSites());
  DetectorRun Run = runDetector(D, Trace);
  EXPECT_GE(Run.DetectedPhases.size(), 2u);
}

TEST(RelatedWorkTest, DescribeIsInformative) {
  LuDetector Lu({});
  DasDetector Das({}, 8);
  EXPECT_NE(Lu.describe().find("lu"), std::string::npos);
  EXPECT_NE(Das.describe().find("pearson"), std::string::npos);
}
