//===- tests/PrinterTest.cpp - JP pretty-printer tests -------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/Diagnostics.h"
#include "lang/Printer.h"
#include "lang/Sema.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

std::unique_ptr<Program> compileOK(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.renderAll();
  return P;
}

/// Print -> reparse -> print must be a fixed point.
void expectRoundTrip(const std::string &Source) {
  std::unique_ptr<Program> P1 = compileOK(Source);
  ASSERT_NE(P1, nullptr);
  std::string S1 = printProgram(*P1);
  std::unique_ptr<Program> P2 = compileOK(S1);
  ASSERT_NE(P2, nullptr) << "printer emitted unparsable source:\n" << S1;
  EXPECT_EQ(printProgram(*P2), S1);
}

} // namespace

TEST(PrinterTest, MinimalProgram) {
  expectRoundTrip("program t; method main() { branch b; }");
}

TEST(PrinterTest, AllStatementForms) {
  expectRoundTrip(
      "program t;"
      "method f(n) {"
      "  loop i times n * 2 + 1 {"
      "    branch a; branch b flip 0.25;"
      "    when (i % 2 == 0) { branch c; } else { branch d; }"
      "    if 0.5 { branch e; }"
      "    pick { weight 2 { branch g; } weight 1 { branch h; } }"
      "  }"
      "}"
      "method main() { call f(4); { branch z; } }");
}

TEST(PrinterTest, ExpressionParenthesization) {
  std::unique_ptr<Program> P = compileOK(
      "program t; method main() { loop times (1 + 2) * 3 { branch a; } }");
  // The loop count must survive with the same value.
  ExecutionResult R1 = runProgram(*P, {});
  std::unique_ptr<Program> P2 = compileOK(printProgram(*P));
  ExecutionResult R2 = runProgram(*P2, {});
  EXPECT_EQ(R1.Branches.size(), R2.Branches.size());
  EXPECT_EQ(R1.Branches.size(), 9u);
}

TEST(PrinterTest, NestedUnary) {
  expectRoundTrip(
      "program t; method main() { loop times - -3 { branch a; } }");
}

TEST(PrinterTest, PrintedProgramBehavesIdentically) {
  // The printed form of every standard workload must execute to the
  // exact same trace.
  for (const Workload &W : standardWorkloads()) {
    std::unique_ptr<Program> Original = compileWorkload(W, 0.1);
    std::unique_ptr<Program> Printed = compileOK(printProgram(*Original));
    ASSERT_NE(Printed, nullptr) << W.Name;
    InterpreterOptions Options;
    Options.Seed = W.Seed;
    ExecutionResult A = runProgram(*Original, Options);
    ExecutionResult B = runProgram(*Printed, Options);
    ASSERT_EQ(A.Branches.size(), B.Branches.size()) << W.Name;
    for (uint64_t I = 0; I != A.Branches.size(); ++I)
      ASSERT_EQ(A.Branches.sites().element(A.Branches[I]),
                B.Branches.sites().element(B.Branches[I]))
          << W.Name << " diverges at element " << I;
  }
}

TEST(PrinterTest, PrintExprForms) {
  std::unique_ptr<Program> P = compileOK(
      "program t; method f(x) { loop times x * 2 - 1 { branch a; } }"
      "method main() { call f(3); }");
  const auto *Loop = dynamic_cast<const LoopStmt *>(
      P->methods()[0]->body()->stmts()[0].get());
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(printExpr(*Loop->count()), "(x * 2) - 1");
}
