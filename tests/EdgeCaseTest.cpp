//===- tests/EdgeCaseTest.cpp - Edge-case and robustness tests -----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"
#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"
#include "harness/Sweep.h"
#include "metrics/Scoring.h"
#include "support/ArgParser.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

using namespace opd;

//===----------------------------------------------------------------------===//
// Detector edge cases
//===----------------------------------------------------------------------===//

namespace {

BranchTrace uniformTrace(uint64_t Len) {
  BranchTrace Trace;
  for (uint64_t I = 0; I != Len; ++I)
    Trace.append(ProfileElement(0, 0, true));
  return Trace;
}

DetectorConfig smallConfig(TWPolicyKind Policy) {
  DetectorConfig C;
  C.Window.CWSize = 10;
  C.Window.TWSize = 10;
  C.Window.TWPolicy = Policy;
  return C;
}

} // namespace

TEST(DetectorEdgeTest, EmptyTrace) {
  BranchTrace Empty;
  Empty.internSite(ProfileElement(0, 0, true));
  std::unique_ptr<PhaseDetector> D =
      makeDetector(smallConfig(TWPolicyKind::Adaptive), 1);
  DetectorRun Run = runDetector(*D, Empty);
  EXPECT_EQ(Run.States.size(), 0u);
  EXPECT_TRUE(Run.DetectedPhases.empty());
  EXPECT_TRUE(Run.AnchoredPhases.empty());
}

TEST(DetectorEdgeTest, TraceShorterThanWindows) {
  BranchTrace Trace = uniformTrace(5); // windows need 20
  for (TWPolicyKind Policy :
       {TWPolicyKind::Constant, TWPolicyKind::Adaptive}) {
    std::unique_ptr<PhaseDetector> D = makeDetector(smallConfig(Policy), 1);
    DetectorRun Run = runDetector(*D, Trace);
    EXPECT_EQ(Run.States.size(), 5u);
    EXPECT_EQ(Run.States.numInPhase(), 0u);
  }
}

TEST(DetectorEdgeTest, TraceExactlyWindowSize) {
  BranchTrace Trace = uniformTrace(20);
  std::unique_ptr<PhaseDetector> D =
      makeDetector(smallConfig(TWPolicyKind::Constant), 1);
  DetectorRun Run = runDetector(*D, Trace);
  // The 20th element fills the TW; the state computed for it is P.
  EXPECT_EQ(Run.States.size(), 20u);
  EXPECT_EQ(Run.States.numInPhase(), 1u);
}

TEST(DetectorEdgeTest, SkipLargerThanTrace) {
  BranchTrace Trace = uniformTrace(50);
  DetectorConfig C = smallConfig(TWPolicyKind::Constant);
  C.Window.SkipFactor = 1000;
  std::unique_ptr<PhaseDetector> D = makeDetector(C, 1);
  DetectorRun Run = runDetector(*D, Trace);
  EXPECT_EQ(Run.States.size(), 50u);
  EXPECT_EQ(Run.States.runs().size(), 1u); // one batch, one state
}

TEST(DetectorEdgeTest, SingleSiteVocabulary) {
  // Degenerate vocabulary: everything is maximally similar forever.
  BranchTrace Trace = uniformTrace(500);
  for (ModelKind Model :
       {ModelKind::UnweightedSet, ModelKind::WeightedSet,
        ModelKind::ManhattanBBV}) {
    DetectorConfig C = smallConfig(TWPolicyKind::Adaptive);
    C.Model = Model;
    std::unique_ptr<PhaseDetector> D = makeDetector(C, 1);
    DetectorRun Run = runDetector(*D, Trace);
    // One long phase once the windows fill.
    ASSERT_EQ(Run.DetectedPhases.size(), 1u) << modelKindName(Model);
    EXPECT_EQ(Run.DetectedPhases[0].End, 500u);
  }
}

TEST(DetectorEdgeTest, AdaptiveSurvivesManyFlushCycles) {
  // Alternate tiny vocab blocks to force frequent phase start/end churn.
  BranchTrace Trace;
  for (SiteIndex S = 0; S != 2; ++S)
    Trace.internSite(ProfileElement(0, S, true));
  for (int Block = 0; Block != 100; ++Block)
    for (int I = 0; I != 37; ++I)
      Trace.appendIndex(Block % 2);
  std::unique_ptr<PhaseDetector> D =
      makeDetector(smallConfig(TWPolicyKind::Adaptive), 2);
  DetectorRun Run = runDetector(*D, Trace);
  EXPECT_EQ(Run.States.size(), Trace.size());
  // Phases and anchors stay well-formed under churn.
  uint64_t PrevEnd = 0;
  for (const PhaseInterval &P : Run.AnchoredPhases) {
    EXPECT_LE(PrevEnd, P.Begin);
    PrevEnd = P.End;
  }
}

//===----------------------------------------------------------------------===//
// Sweep enumeration details
//===----------------------------------------------------------------------===//

TEST(SweepEdgeTest, SkipFactorsMultiplyNonFixedPolicies) {
  SweepSpec Spec;
  Spec.CWSizes = {100};
  Spec.SkipFactors = {1, 10};
  Spec.Models = {ModelKind::UnweightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.5}};
  Spec.TWPolicies = {TWPolicyKind::Constant};
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  EXPECT_EQ(Configs.size(), 2u);
  EXPECT_EQ(Configs[0].Window.SkipFactor, 1u);
  EXPECT_EQ(Configs[1].Window.SkipFactor, 10u);
}

TEST(SweepEdgeTest, TWFactorsScaleTrailingWindow) {
  SweepSpec Spec;
  Spec.CWSizes = {100};
  Spec.TWFactors = {1, 3};
  Spec.Models = {ModelKind::UnweightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.5}};
  Spec.TWPolicies = {TWPolicyKind::Constant};
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  ASSERT_EQ(Configs.size(), 2u);
  EXPECT_EQ(Configs[0].Window.TWSize, 100u);
  EXPECT_EQ(Configs[1].Window.TWSize, 300u);
}

TEST(SweepEdgeTest, EmptyAnalyzerListYieldsNoConfigs) {
  SweepSpec Spec;
  Spec.CWSizes = {100};
  Spec.Analyzers = {};
  EXPECT_TRUE(enumerateConfigs(Spec).empty());
}

//===----------------------------------------------------------------------===//
// TraceIO robustness
//===----------------------------------------------------------------------===//

namespace {

class TempFile {
  std::string Path;

public:
  explicit TempFile(const std::string &Suffix) {
    Path = testing::TempDir() + "opd_edge_" + std::to_string(::getpid()) +
           "_" + Suffix;
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }
};

} // namespace

TEST(TraceIOEdgeTest, TruncatedBinaryBodyFails) {
  TempFile F("trunc.bin");
  BranchTrace Trace;
  for (int I = 0; I != 100; ++I)
    Trace.append(ProfileElement(1, static_cast<uint32_t>(I), true));
  ASSERT_TRUE(writeBranchTraceBinary(Trace, F.path()));
  // Chop the file in half.
  std::FILE *Raw = std::fopen(F.path().c_str(), "rb+");
  ASSERT_NE(Raw, nullptr);
  ASSERT_EQ(::ftruncate(fileno(Raw), 100), 0);
  std::fclose(Raw);
  BranchTrace Loaded;
  IOStatus S = readBranchTraceBinary(F.path(), Loaded);
  EXPECT_FALSE(S);
  EXPECT_NE(S.Message.find("truncated"), std::string::npos);
}

TEST(TraceIOEdgeTest, EmptyTraceRoundTrips) {
  TempFile F("empty.bin");
  BranchTrace Empty;
  ASSERT_TRUE(writeBranchTraceBinary(Empty, F.path()));
  BranchTrace Loaded;
  Loaded.append(ProfileElement(9, 9, true)); // must be replaced
  ASSERT_TRUE(readBranchTraceBinary(F.path(), Loaded));
  EXPECT_EQ(Loaded.size(), 0u);
}

TEST(TraceIOEdgeTest, InvalidEventKindRejected) {
  TempFile F("badkind.bin");
  CallLoopTrace Trace;
  Trace.append(CallLoopEventKind::MethodEnter, 0, 0);
  ASSERT_TRUE(writeCallLoopTraceBinary(Trace, F.path()));
  // Corrupt the kind byte (first byte after the 16-byte header).
  std::FILE *Raw = std::fopen(F.path().c_str(), "rb+");
  ASSERT_NE(Raw, nullptr);
  std::fseek(Raw, 16, SEEK_SET);
  std::fputc(0x7f, Raw);
  std::fclose(Raw);
  CallLoopTrace Loaded;
  IOStatus S = readCallLoopTraceBinary(F.path(), Loaded);
  EXPECT_FALSE(S);
  EXPECT_NE(S.Message.find("invalid event kind"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ArgParser odds and ends
//===----------------------------------------------------------------------===//

TEST(ArgParserEdgeTest, UsageListsEverything) {
  ArgParser P("tool", "does things");
  P.addFlag("verbose", "be chatty");
  P.addOption("scale", "workload scale", "1.0");
  std::string Usage = P.usage();
  EXPECT_NE(Usage.find("--verbose"), std::string::npos);
  EXPECT_NE(Usage.find("--scale=<value>"), std::string::npos);
  EXPECT_NE(Usage.find("default: 1.0"), std::string::npos);
  EXPECT_NE(Usage.find("does things"), std::string::npos);
}

TEST(ArgParserEdgeTest, BoolFlagRejectsValue) {
  ArgParser P("tool", "t");
  P.addFlag("verbose", "v");
  const char *Argv[] = {"tool", "--verbose=yes"};
  EXPECT_FALSE(P.parse(2, Argv));
}

TEST(ArgParserEdgeTest, GetIntFallbackOnGarbage) {
  ArgParser P("tool", "t");
  P.addOption("n", "a number", "notanumber");
  const char *Argv[] = {"tool"};
  ASSERT_TRUE(P.parse(1, Argv));
  EXPECT_EQ(P.getInt("n", -7), -7);
}

//===----------------------------------------------------------------------===//
// Baseline oddities
//===----------------------------------------------------------------------===//

TEST(BaselineEdgeTest, ZeroLengthInstanceIgnored) {
  // A loop that executes zero iterations spans zero elements and can
  // never be a phase.
  CallLoopTrace Trace;
  Trace.append(CallLoopEventKind::MethodEnter, 0, 0);
  Trace.append(CallLoopEventKind::LoopEnter, 1, 5);
  Trace.append(CallLoopEventKind::LoopExit, 1, 5);
  Trace.append(CallLoopEventKind::MethodExit, 0, 10);
  InstanceTree Tree = InstanceTree::build(Trace, 10);
  BaselineSolution Sol = computeBaseline(Tree, 1);
  EXPECT_EQ(Sol.numPhases(), 0u);
}

TEST(BaselineEdgeTest, MPLOfOneSelectsEverySeparatedLoop) {
  CallLoopTrace Trace;
  Trace.append(CallLoopEventKind::MethodEnter, 0, 0);
  for (uint32_t I = 0; I != 3; ++I) {
    Trace.append(CallLoopEventKind::LoopEnter, I, I * 10);
    Trace.append(CallLoopEventKind::LoopExit, I, I * 10 + 5);
  }
  Trace.append(CallLoopEventKind::MethodExit, 0, 30);
  InstanceTree Tree = InstanceTree::build(Trace, 30);
  BaselineSolution Sol = computeBaseline(Tree, 1);
  EXPECT_EQ(Sol.numPhases(), 3u);
}

TEST(DetectorEdgeTest, SkipBetweenCWAndSpanRecoversAfterFlush) {
  // Regression: with CW < skip < CW+TW, the post-flush CW seed must be
  // clamped to the CW capacity or the windows never refill and the
  // detector stays in T forever.
  BranchTrace Trace;
  for (SiteIndex S = 0; S != 2; ++S)
    Trace.internSite(ProfileElement(0, S, true));
  // Block A, block B, block A again: two phase ends and re-entries.
  for (int I = 0; I != 400; ++I)
    Trace.appendIndex(0);
  for (int I = 0; I != 400; ++I)
    Trace.appendIndex(1);
  for (int I = 0; I != 400; ++I)
    Trace.appendIndex(0);

  DetectorConfig C = smallConfig(TWPolicyKind::Constant);
  C.Window.CWSize = 10;
  C.Window.TWSize = 10;
  C.Window.SkipFactor = 15; // between CW and CW+TW
  std::unique_ptr<PhaseDetector> D = makeDetector(C, 2);
  DetectorRun Run = runDetector(*D, Trace);
  // The detector must re-enter P inside the final uniform block.
  ASSERT_FALSE(Run.DetectedPhases.empty());
  EXPECT_GT(Run.DetectedPhases.back().End, 850u);
}
