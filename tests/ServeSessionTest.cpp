//===- tests/ServeSessionTest.cpp - Session state-machine tests -------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ServeSession is driven here entirely with byte buffers — no sockets —
/// which is the point of its design: the handshake validation, the
/// lifecycle state machine, backpressure watermarks, eviction/drain
/// semantics, and above all the equivalence contract (a session's
/// streamed transitions rebuilt into a DetectorRun must equal offline
/// runDetector() on the same elements, for any wire chunking and any
/// pump interleaving) are all provable without I/O.
///
//===----------------------------------------------------------------------===//

#include "core/DetectorRunner.h"
#include "serve/Client.h"
#include "serve/Session.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

/// A small phase-structured trace shared by the equivalence tests.
const SyntheticTrace &testTrace() {
  static const SyntheticTrace T = [] {
    SyntheticSpec Spec;
    Spec.NumPhases = 6;
    Spec.PhaseLength = 4000;
    Spec.TransitionLength = 600;
    Spec.Seed = 7;
    return generateSynthetic(Spec);
  }();
  return T;
}

DetectorConfig baseConfig() {
  DetectorConfig C;
  C.Window.CWSize = 200;
  C.Window.TWSize = 200;
  C.Window.SkipFactor = 1;
  return C;
}

std::vector<uint8_t> helloBytes(const DetectorConfig &C, SiteIndex NumSites,
                                uint16_t Flags = HelloWantAnchors) {
  HelloMsg M;
  M.Flags = Flags;
  M.NumSites = NumSites;
  M.Config = C;
  std::vector<uint8_t> Bytes;
  appendHello(Bytes, M);
  return Bytes;
}

/// Decodes a session's output bytes into a StreamedRun (events only).
void collectEvents(const std::vector<uint8_t> &Bytes, StreamedRun &Run) {
  FrameReader Reader;
  Reader.feed(Bytes.data(), Bytes.size());
  Frame F;
  while (Reader.next(F) == FrameReader::Status::Frame) {
    switch (F.Kind) {
    case MsgKind::HelloAck:
      ASSERT_TRUE(parseHelloAck(F, Run.Ack));
      break;
    case MsgKind::Transition: {
      TransitionMsg T;
      ASSERT_TRUE(parseTransition(F, T));
      Run.Transitions.push_back(T);
      break;
    }
    case MsgKind::Progress: {
      ProgressMsg P;
      ASSERT_TRUE(parseProgress(F, P));
      EXPECT_GE(P.Ingested, Run.LastProgress);
      Run.LastProgress = P.Ingested;
      break;
    }
    case MsgKind::Finished:
      ASSERT_TRUE(parseFinished(F, Run.Summary));
      Run.GotFinished = true;
      break;
    case MsgKind::Error:
      ASSERT_TRUE(parseError(F, Run.Err));
      Run.GotError = true;
      break;
    default:
      FAIL() << "unexpected frame kind " << unsigned(F.Kind);
    }
  }
  EXPECT_EQ(Reader.buffered(), 0u);
}

void expectRunsEqual(const DetectorRun &Reference, const DetectorRun &Streamed,
                     const std::string &What) {
  ASSERT_EQ(Reference.States.size(), Streamed.States.size()) << What;
  const std::vector<StateRun> &RR = Reference.States.runs();
  const std::vector<StateRun> &SR = Streamed.States.runs();
  ASSERT_EQ(RR.size(), SR.size()) << What;
  for (size_t I = 0; I != RR.size(); ++I) {
    ASSERT_EQ(RR[I].Begin, SR[I].Begin) << What << " run " << I;
    ASSERT_EQ(RR[I].Length, SR[I].Length) << What << " run " << I;
    ASSERT_EQ(RR[I].State, SR[I].State) << What << " run " << I;
  }
  EXPECT_EQ(Reference.DetectedPhases, Streamed.DetectedPhases) << What;
  EXPECT_EQ(Reference.AnchoredPhases, Streamed.AnchoredPhases) << What;
}

/// Streams the test trace through a session with the given wire chunking
/// and pump budget, then requires the rebuilt run to equal runDetector.
void runEquivalence(const DetectorConfig &Config, size_t ElementsPerFrame,
                    size_t FeedBytes, size_t PumpBudget,
                    const std::string &What) {
  const BranchTrace &Trace = testTrace().Trace;
  DetectorCache Cache;
  ServeSession Sess(/*Id=*/1, ServeLimits(), Cache);

  // Encode the whole client side of the conversation...
  std::vector<uint8_t> Wire =
      helloBytes(Config, Trace.numSites(), HelloWantAnchors);
  const std::vector<SiteIndex> &E = Trace.elements();
  for (size_t Pos = 0; Pos < E.size(); Pos += ElementsPerFrame)
    appendElements(Wire, E.data() + Pos,
                   std::min(ElementsPerFrame, E.size() - Pos));
  appendFinish(Wire);

  // ...then deliver it in FeedBytes-sized chunks with pumps interleaved.
  std::vector<uint8_t> Out;
  for (size_t Pos = 0; Pos < Wire.size(); Pos += FeedBytes) {
    ASSERT_TRUE(
        Sess.feed(Wire.data() + Pos, std::min(FeedBytes, Wire.size() - Pos)))
        << What;
    while (Sess.pump(PumpBudget)) {
    }
    if (Sess.hasOutput())
      Sess.takeOutput(Out);
  }
  while (Sess.pump(PumpBudget)) {
  }
  Sess.takeOutput(Out);
  EXPECT_TRUE(Sess.done()) << What;

  StreamedRun Run;
  collectEvents(Out, Run);
  ASSERT_TRUE(Run.GotFinished) << What;
  EXPECT_FALSE(Run.GotError) << What;
  EXPECT_EQ(Run.Summary.Elements, E.size()) << What;
  EXPECT_EQ(Run.Ack.BatchSize, Config.Window.SkipFactor) << What;

  std::unique_ptr<PhaseDetector> Ref = makeDetector(Config, Trace.numSites());
  DetectorRun Reference = runDetector(*Ref, Trace);
  DetectorRun Streamed = streamedToDetectorRun(Run);
  expectRunsEqual(Reference, Streamed, What);
  EXPECT_EQ(Run.Summary.Transitions, Run.Transitions.size()) << What;
}

TEST(ServeSession, EquivalenceSkipOne) {
  runEquivalence(baseConfig(), 4096, 1u << 14, SIZE_MAX, "skip=1");
}

TEST(ServeSession, EquivalenceSkipHundredSmallFrames) {
  DetectorConfig C = baseConfig();
  C.Window.SkipFactor = 100;
  // 37-element frames never align with the 100-element batch, and the
  // 1 KiB feed splits frames across feed() calls.
  runEquivalence(C, 37, 1u << 10, SIZE_MAX, "skip=100 frames=37");
}

TEST(ServeSession, EquivalenceSkipLargerThanTraceTail) {
  DetectorConfig C = baseConfig();
  C.Window.SkipFactor = 7000; // Forces a short trailing batch at Finish.
  runEquivalence(C, 4096, 1u << 14, SIZE_MAX, "skip=7000");
}

TEST(ServeSession, EquivalenceAdaptiveWeightedBoundedPumps) {
  DetectorConfig C = baseConfig();
  C.Window.TWPolicy = TWPolicyKind::Adaptive;
  C.Model = ModelKind::WeightedSet;
  C.TheAnalyzer = AnalyzerKind::Average;
  C.AnalyzerParam = 0.05;
  C.Window.SkipFactor = 13;
  // A tiny pump budget forces many partial pumps per feed.
  runEquivalence(C, 501, 1u << 12, 64, "adaptive weighted pump=64");
}

TEST(ServeSession, HandshakeRejectsInvalidConfigs) {
  DetectorCache Cache;
  const SiteIndex Sites = 100;

  struct Case {
    const char *Name;
    DetectorConfig Config;
    SiteIndex NumSites;
    ServeError Expect;
  };
  DetectorConfig ZeroCW = baseConfig();
  ZeroCW.Window.CWSize = 0;
  DetectorConfig ZeroSkip = baseConfig();
  ZeroSkip.Window.SkipFactor = 0;
  DetectorConfig HugeTW = baseConfig();
  HugeTW.Window.TWSize = (1u << 20) + 1;
  DetectorConfig NanParam = baseConfig();
  NanParam.AnalyzerParam = std::numeric_limits<double>::quiet_NaN();

  const Case Cases[] = {
      {"zero cw", ZeroCW, Sites, ServeError::BadConfig},
      {"zero skip", ZeroSkip, Sites, ServeError::BadConfig},
      {"huge tw", HugeTW, Sites, ServeError::BadConfig},
      {"nan param", NanParam, Sites, ServeError::BadConfig},
      {"zero sites", baseConfig(), 0, ServeError::BadConfig},
  };
  uint64_t Id = 10;
  for (const Case &C : Cases) {
    ServeSession Sess(Id++, ServeLimits(), Cache);
    std::vector<uint8_t> Hello = helloBytes(C.Config, C.NumSites);
    EXPECT_FALSE(Sess.feed(Hello.data(), Hello.size())) << C.Name;
    EXPECT_TRUE(Sess.failed()) << C.Name;
    EXPECT_EQ(Sess.error(), C.Expect) << C.Name;

    StreamedRun Run;
    std::vector<uint8_t> Out;
    Sess.takeOutput(Out);
    collectEvents(Out, Run);
    ASSERT_TRUE(Run.GotError) << C.Name;
    EXPECT_EQ(Run.Err.Code, C.Expect) << C.Name;
    EXPECT_FALSE(Run.Err.Message.empty()) << C.Name;
  }
  // Rejected handshakes never touched the detector cache.
  EXPECT_EQ(Cache.stats().Misses, 0u);
  EXPECT_EQ(Cache.stats().Hits, 0u);
}

TEST(ServeSession, ElementsBeforeHandshakeFails) {
  DetectorCache Cache;
  ServeSession Sess(1, ServeLimits(), Cache);
  SiteIndex E[] = {1, 2, 3};
  std::vector<uint8_t> Wire;
  appendElements(Wire, E, 3);
  EXPECT_FALSE(Sess.feed(Wire.data(), Wire.size()));
  EXPECT_EQ(Sess.error(), ServeError::BadState);
}

TEST(ServeSession, OutOfRangeElementFails) {
  DetectorCache Cache;
  ServeSession Sess(1, ServeLimits(), Cache);
  std::vector<uint8_t> Wire = helloBytes(baseConfig(), /*NumSites=*/10);
  SiteIndex E[] = {1, 2, 10}; // 10 is outside [0, 10).
  appendElements(Wire, E, 3);
  EXPECT_FALSE(Sess.feed(Wire.data(), Wire.size()));
  EXPECT_EQ(Sess.error(), ServeError::SiteRange);
}

TEST(ServeSession, DuplicateHelloAndFinishFail) {
  DetectorCache Cache;
  {
    ServeSession Sess(1, ServeLimits(), Cache);
    std::vector<uint8_t> Wire = helloBytes(baseConfig(), 10);
    ASSERT_TRUE(Sess.feed(Wire.data(), Wire.size()));
    EXPECT_FALSE(Sess.feed(Wire.data(), Wire.size()));
    EXPECT_EQ(Sess.error(), ServeError::BadState);
  }
  {
    ServeSession Sess(2, ServeLimits(), Cache);
    std::vector<uint8_t> Wire = helloBytes(baseConfig(), 10);
    appendFinish(Wire);
    appendFinish(Wire);
    EXPECT_FALSE(Sess.feed(Wire.data(), Wire.size()));
    EXPECT_EQ(Sess.error(), ServeError::BadState);
  }
}

TEST(ServeSession, BackpressureWatermarks) {
  DetectorCache Cache;
  ServeLimits Limits;
  Limits.MaxPendingElements = 1000;
  ServeSession Sess(1, Limits, Cache);

  DetectorConfig C = baseConfig();
  C.Window.SkipFactor = 10;
  std::vector<uint8_t> Wire = helloBytes(C, /*NumSites=*/4);
  std::vector<SiteIndex> E(1200, 1);
  appendElements(Wire, E.data(), E.size());
  ASSERT_TRUE(Sess.feed(Wire.data(), Wire.size()));

  EXPECT_GE(Sess.pendingElements(), Limits.MaxPendingElements);
  EXPECT_TRUE(Sess.ingressSaturated());
  EXPECT_FALSE(Sess.ingressRelieved());

  while (Sess.pump(100))
    if (Sess.ingressRelieved())
      break;
  EXPECT_TRUE(Sess.ingressRelieved());
  EXPECT_FALSE(Sess.ingressSaturated());
}

TEST(ServeSession, EvictionDeliversDecidableTransitionsOnly) {
  const BranchTrace &Trace = testTrace().Trace;
  DetectorCache Cache;
  ServeSession Sess(1, ServeLimits(), Cache);

  DetectorConfig C = baseConfig();
  C.Window.SkipFactor = 100;
  std::vector<uint8_t> Wire = helloBytes(C, Trace.numSites());
  // 10 full batches plus a 50-element tail the eviction must NOT decide.
  size_t N = 1050;
  appendElements(Wire, Trace.elements().data(), N);
  ASSERT_TRUE(Sess.feed(Wire.data(), Wire.size()));

  Sess.shutdown(ServeError::Evicted);
  EXPECT_TRUE(Sess.failed());
  EXPECT_EQ(Sess.error(), ServeError::Evicted);
  // All full batches were decided; the sub-batch tail was not.
  EXPECT_EQ(Sess.elementsProcessed(), 1000u);

  std::vector<uint8_t> Out;
  Sess.takeOutput(Out);
  StreamedRun Run;
  collectEvents(Out, Run);
  EXPECT_TRUE(Run.GotError);
  EXPECT_EQ(Run.Err.Code, ServeError::Evicted);
  EXPECT_FALSE(Run.GotFinished);
}

TEST(ServeSession, ShutdownDrainsPendingTransitions) {
  const BranchTrace &Trace = testTrace().Trace;
  DetectorCache Cache;
  ServeSession Sess(1, ServeLimits(), Cache);

  DetectorConfig C = baseConfig();
  C.Window.SkipFactor = 1; // Decisions (and flips) at every element.
  size_t N = 3000;
  std::vector<uint8_t> Wire = helloBytes(C, Trace.numSites());
  appendElements(Wire, Trace.elements().data(), N);
  ASSERT_TRUE(Sess.feed(Wire.data(), Wire.size()));
  // No pump ran yet: every transition is still pending in the backlog.
  EXPECT_EQ(Sess.pendingElements(), N);

  Sess.shutdown(ServeError::Shutdown);
  EXPECT_TRUE(Sess.failed());
  EXPECT_EQ(Sess.elementsProcessed(), N);

  std::vector<uint8_t> Out;
  Sess.takeOutput(Out);
  StreamedRun Run;
  collectEvents(Out, Run);
  EXPECT_EQ(Run.Err.Code, ServeError::Shutdown);

  // The delivered transitions match the offline detector on the same
  // prefix (same states at the same offsets — the drain guarantee).
  std::unique_ptr<PhaseDetector> Ref = makeDetector(C, Trace.numSites());
  StateSequence States;
  std::vector<uint64_t> Anchors;
  Ref->reset();
  Ref->consumeTrace(Trace.elements().data(), N, States, Anchors);
  StreamedRun Full = Run;
  Full.Summary.Elements = N; // Rebuild over the drained prefix length.
  DetectorRun Streamed = streamedToDetectorRun(Full);
  ASSERT_EQ(States.size(), Streamed.States.size());
  const std::vector<StateRun> &RR = States.runs();
  const std::vector<StateRun> &SR = Streamed.States.runs();
  ASSERT_EQ(RR.size(), SR.size());
  for (size_t I = 0; I != RR.size(); ++I) {
    EXPECT_EQ(RR[I].Begin, SR[I].Begin) << I;
    EXPECT_EQ(RR[I].Length, SR[I].Length) << I;
    EXPECT_EQ(RR[I].State, SR[I].State) << I;
  }
}

TEST(ServeSession, ShutdownCompletesDrainingSession) {
  const BranchTrace &Trace = testTrace().Trace;
  DetectorCache Cache;
  ServeSession Sess(1, ServeLimits(), Cache);

  DetectorConfig C = baseConfig();
  C.Window.SkipFactor = 100;
  std::vector<uint8_t> Wire = helloBytes(C, Trace.numSites());
  appendElements(Wire, Trace.elements().data(), 250);
  appendFinish(Wire);
  ASSERT_TRUE(Sess.feed(Wire.data(), Wire.size()));

  // The client already finished; a server drain completes the session
  // normally (Finished, not Error).
  Sess.shutdown(ServeError::Shutdown);
  EXPECT_TRUE(Sess.done());
  EXPECT_EQ(Sess.elementsProcessed(), 250u);

  std::vector<uint8_t> Out;
  Sess.takeOutput(Out);
  StreamedRun Run;
  collectEvents(Out, Run);
  EXPECT_TRUE(Run.GotFinished);
  EXPECT_FALSE(Run.GotError);
  EXPECT_EQ(Run.Summary.Elements, 250u);
}

TEST(ServeSession, ProgressTracksIngestNotDecisions) {
  DetectorCache Cache;
  ServeSession Sess(1, ServeLimits(), Cache);

  DetectorConfig C = baseConfig();
  C.Window.SkipFactor = 1000; // Far larger than what we send.
  std::vector<uint8_t> Wire =
      helloBytes(C, /*NumSites=*/4, HelloWantProgress);
  std::vector<SiteIndex> E(300, 2);
  appendElements(Wire, E.data(), E.size());
  ASSERT_TRUE(Sess.feed(Wire.data(), Wire.size()));
  while (Sess.pump()) {
  }

  std::vector<uint8_t> Out;
  Sess.takeOutput(Out);
  StreamedRun Run;
  collectEvents(Out, Run);
  // Nothing was decidable (300 < 1000), but the ingest ack still moved:
  // that is what keeps window-based clients from deadlocking when the
  // skip factor exceeds their frame size.
  EXPECT_EQ(Run.LastProgress, 300u);
  EXPECT_EQ(Sess.elementsProcessed(), 0u);
}

TEST(ServeSession, DetectorCacheReusesAcrossSessions) {
  const BranchTrace &Trace = testTrace().Trace;
  DetectorCache Cache;
  DetectorConfig C = baseConfig();
  C.Window.SkipFactor = 50;

  DetectorRun Reference;
  {
    std::unique_ptr<PhaseDetector> Ref = makeDetector(C, Trace.numSites());
    Reference = runDetector(*Ref, Trace);
  }

  for (int Round = 0; Round != 3; ++Round) {
    ServeSession Sess(uint64_t(Round + 1), ServeLimits(), Cache);
    std::vector<uint8_t> Wire =
        helloBytes(C, Trace.numSites(), HelloWantAnchors);
    appendElements(Wire, Trace.elements().data(), Trace.size());
    appendFinish(Wire);
    ASSERT_TRUE(Sess.feed(Wire.data(), Wire.size()));
    while (Sess.pump()) {
    }
    ASSERT_TRUE(Sess.done());

    std::vector<uint8_t> Out;
    Sess.takeOutput(Out);
    StreamedRun Run;
    collectEvents(Out, Run);
    ASSERT_TRUE(Run.GotFinished);
    DetectorRun Streamed = streamedToDetectorRun(Run);
    expectRunsEqual(Reference, Streamed,
                    "cache round " + std::to_string(Round));
  }
  // Round 1 built the detector; rounds 2 and 3 reconfigured it.
  EXPECT_EQ(Cache.stats().Misses, 1u);
  EXPECT_EQ(Cache.stats().Hits, 2u);
  EXPECT_EQ(Cache.stats().Releases, 3u);
}

} // namespace
