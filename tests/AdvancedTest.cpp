//===- tests/AdvancedTest.cpp - Multi-scale/prediction/interleave tests -------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the second wave of extensions: multi-scale (hierarchical)
/// detection, next-phase prediction, multi-threaded interleaving,
/// sampled profiles, and the constant-folding transform.
///
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"
#include "core/DetectorRunner.h"
#include "core/MultiScale.h"
#include "core/PhasePredictor.h"
#include "lang/Diagnostics.h"
#include "lang/Printer.h"
#include "lang/Sema.h"
#include "lang/Transforms.h"
#include "metrics/Scoring.h"
#include "support/Casting.h"
#include "support/Random.h"
#include "trace/Sampling.h"
#include "vm/Interleave.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace opd;

namespace {

ExecutionResult runSource(const std::string &Source, uint64_t Seed = 1) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.renderAll();
  InterpreterOptions Options;
  Options.Seed = Seed;
  return runProgram(*P, Options);
}

BranchTrace makeBlockTrace(std::initializer_list<std::pair<SiteIndex, unsigned>>
                               Blocks,
                           SiteIndex NumSites) {
  BranchTrace Trace;
  for (SiteIndex S = 0; S != NumSites; ++S)
    Trace.internSite(ProfileElement(0, S, true));
  for (const auto &[Site, Len] : Blocks)
    for (unsigned I = 0; I != Len; ++I)
      Trace.appendIndex(Site);
  return Trace;
}

} // namespace

//===----------------------------------------------------------------------===//
// MultiScaleDetector
//===----------------------------------------------------------------------===//

TEST(MultiScaleTest, LevelsHaveGeometricWindows) {
  MultiScaleDetector::Options Opts;
  Opts.BaseCWSize = 100;
  Opts.ScaleFactor = 4;
  Opts.NumLevels = 3;
  MultiScaleDetector D(Opts, 4);
  EXPECT_EQ(D.numLevels(), 3u);
  EXPECT_EQ(D.levelCWSize(0), 100u);
  EXPECT_EQ(D.levelCWSize(1), 400u);
  EXPECT_EQ(D.levelCWSize(2), 1600u);
}

TEST(MultiScaleTest, EveryLevelCoversTheTrace) {
  BranchTrace Trace = makeBlockTrace({{0, 3000}, {1, 3000}}, 2);
  MultiScaleDetector::Options Opts;
  Opts.BaseCWSize = 50;
  Opts.ScaleFactor = 5;
  Opts.NumLevels = 3;
  MultiScaleDetector D(Opts, Trace.numSites());
  MultiScaleRun Run = runMultiScale(D, Trace);
  ASSERT_EQ(Run.LevelStates.size(), 3u);
  for (const StateSequence &S : Run.LevelStates)
    EXPECT_EQ(S.size(), Trace.size());
}

TEST(MultiScaleTest, FinerLevelsDetectEarlier) {
  // After the vocabulary shift at 3000, the finest level (CW 50) should
  // re-enter P long before the coarsest (CW 1250).
  BranchTrace Trace = makeBlockTrace({{0, 3000}, {1, 3000}}, 2);
  MultiScaleDetector::Options Opts;
  Opts.BaseCWSize = 50;
  Opts.ScaleFactor = 5;
  Opts.NumLevels = 3;
  MultiScaleDetector D(Opts, Trace.numSites());
  MultiScaleRun Run = runMultiScale(D, Trace);

  auto firstPAfter = [&](unsigned Level, uint64_t Offset) -> uint64_t {
    for (const PhaseInterval &P : Run.LevelStates[Level].phases())
      if (P.Begin >= Offset)
        return P.Begin;
    return Trace.size();
  };
  uint64_t Fine = firstPAfter(0, 3000);
  uint64_t Coarse = firstPAfter(2, 3000);
  EXPECT_LT(Fine, Coarse);
}

TEST(MultiScaleTest, HierarchyNestsFinePhasesUnderCoarse) {
  // jlex-like structure: a big stage containing separated sub-loops.
  ExecutionResult Exec = runSource(
      "program t; method main() {"
      "  loop stage times 30 {"
      "    loop sub times 70 { branch a; branch b; }"
      "    branch s0; branch s1;"
      "  }"
      "}");
  MultiScaleDetector::Options Opts;
  Opts.BaseCWSize = 40;
  Opts.ScaleFactor = 10;
  Opts.NumLevels = 2;
  MultiScaleDetector D(Opts, Exec.Branches.numSites());
  MultiScaleRun Run = runMultiScale(D, Exec.Branches);
  std::vector<PhaseHierarchyNode> Roots = buildPhaseHierarchy(Run);
  ASSERT_FALSE(Roots.empty());
  // At least one coarse root holds nested finer phases; every child's
  // start lies inside its parent.
  bool AnyNested = false;
  for (const PhaseHierarchyNode &Root : Roots) {
    for (const PhaseHierarchyNode &Child : Root.Children) {
      AnyNested = true;
      EXPECT_LT(Child.Level, Root.Level);
      EXPECT_GE(Child.Interval.Begin, Root.Interval.Begin);
      EXPECT_LT(Child.Interval.Begin, Root.Interval.End);
    }
  }
  EXPECT_TRUE(AnyNested);
}

//===----------------------------------------------------------------------===//
// PhasePredictor
//===----------------------------------------------------------------------===//

namespace {

std::vector<RecurringPhaseTracker::CompletedPhase>
idsToPhases(std::initializer_list<unsigned> Ids) {
  std::vector<RecurringPhaseTracker::CompletedPhase> Phases;
  uint64_t Offset = 0;
  for (unsigned Id : Ids) {
    Phases.push_back({{Offset, Offset + 10}, Id, false, 0.0});
    Offset += 20;
  }
  return Phases;
}

} // namespace

TEST(PhasePredictorTest, LastValueOnConstantStream) {
  LastPhasePredictor P;
  PredictionAccuracy Acc = evaluatePredictor(P, idsToPhases({3, 3, 3, 3}));
  EXPECT_EQ(Acc.Predictions, 3u); // no basis before the first phase
  EXPECT_EQ(Acc.Correct, 3u);
  EXPECT_DOUBLE_EQ(Acc.rate(), 1.0);
}

TEST(PhasePredictorTest, LastValueFailsOnAlternation) {
  LastPhasePredictor P;
  PredictionAccuracy Acc =
      evaluatePredictor(P, idsToPhases({0, 1, 0, 1, 0, 1}));
  EXPECT_EQ(Acc.Correct, 0u);
}

TEST(PhasePredictorTest, MarkovLearnsAlternation) {
  MarkovPhasePredictor P;
  PredictionAccuracy Acc =
      evaluatePredictor(P, idsToPhases({0, 1, 0, 1, 0, 1, 0, 1, 0, 1}));
  // After observing 0->1 and 1->0 once each, every later forecast is
  // right: 7 of 9 predictions.
  EXPECT_GE(Acc.Correct, 7u);
  EXPECT_EQ(Acc.Predictions, 9u);
}

TEST(PhasePredictorTest, MarkovPrefersFrequentSuccessor) {
  MarkovPhasePredictor P;
  P.observe(5);
  P.observe(7); // 5 -> 7
  P.observe(5); // 7 -> 5
  P.observe(8); // 5 -> 8
  P.observe(5); // 8 -> 5
  P.observe(7); // 5 -> 7 (now 7 leads 2:1)
  P.observe(5);
  ASSERT_TRUE(P.predict().has_value());
  EXPECT_EQ(*P.predict(), 7u);
}

TEST(PhasePredictorTest, MarkovFallsBackToLastValue) {
  MarkovPhasePredictor P;
  P.observe(4);
  ASSERT_TRUE(P.predict().has_value());
  EXPECT_EQ(*P.predict(), 4u); // never saw a successor of 4
}

TEST(PhasePredictorTest, NoForecastBeforeFirstObservation) {
  LastPhasePredictor L;
  MarkovPhasePredictor M;
  EXPECT_FALSE(L.predict().has_value());
  EXPECT_FALSE(M.predict().has_value());
}

//===----------------------------------------------------------------------===//
// Interleaving
//===----------------------------------------------------------------------===//

TEST(InterleaveTest, PreservesEveryElementInThreadOrder) {
  BranchTrace A = makeBlockTrace({{0, 500}, {1, 500}}, 2);
  BranchTrace B = makeBlockTrace({{2, 700}}, 3);
  InterleavedTrace Merged = interleaveTraces({&A, &B}, 100, 42);
  ASSERT_EQ(Merged.Merged.size(), A.size() + B.size());
  ASSERT_EQ(Merged.ThreadIds.size(), Merged.Merged.size());

  // Reconstruct each thread's element sequence and compare.
  std::vector<uint64_t> Cursor(2, 0);
  for (uint64_t I = 0; I != Merged.Merged.size(); ++I) {
    uint8_t T = Merged.ThreadIds[I];
    const BranchTrace &Original = T == 0 ? A : B;
    ASSERT_LT(Cursor[T], Original.size());
    ProfileElement Got = Merged.Merged.sites().element(Merged.Merged[I]);
    ProfileElement Want =
        Original.sites().element(Original[Cursor[T]]);
    EXPECT_EQ(Got.methodId(),
              Want.methodId() + T * InterleavedTrace::MethodIdStride);
    EXPECT_EQ(Got.bytecodeOffset(), Want.bytecodeOffset());
    EXPECT_EQ(Got.taken(), Want.taken());
    ++Cursor[T];
  }
  EXPECT_EQ(Cursor[0], A.size());
  EXPECT_EQ(Cursor[1], B.size());
}

TEST(InterleaveTest, SitesStayDistinctAcrossThreads) {
  BranchTrace A = makeBlockTrace({{0, 100}}, 1);
  BranchTrace B = makeBlockTrace({{0, 100}}, 1); // same site id as A
  InterleavedTrace Merged = interleaveTraces({&A, &B}, 10, 1);
  EXPECT_EQ(Merged.Merged.numSites(), 2u);
}

TEST(InterleaveTest, DeterministicGivenSeed) {
  BranchTrace A = makeBlockTrace({{0, 300}}, 1);
  BranchTrace B = makeBlockTrace({{0, 300}}, 1);
  InterleavedTrace M1 = interleaveTraces({&A, &B}, 50, 9);
  InterleavedTrace M2 = interleaveTraces({&A, &B}, 50, 9);
  EXPECT_EQ(M1.ThreadIds, M2.ThreadIds);
}

TEST(InterleaveTest, DemuxStatesRoundTrip) {
  BranchTrace A = makeBlockTrace({{0, 400}}, 1);
  BranchTrace B = makeBlockTrace({{0, 600}}, 1);
  InterleavedTrace Merged = interleaveTraces({&A, &B}, 64, 3);
  // Label merged elements with an arbitrary deterministic pattern.
  StateSequence MergedStates;
  for (uint64_t I = 0; I != Merged.Merged.size(); ++I)
    MergedStates.append(I % 3 == 0 ? PhaseState::InPhase
                                   : PhaseState::Transition);
  std::vector<StateSequence> PerThread =
      demuxStates(Merged, MergedStates);
  ASSERT_EQ(PerThread.size(), 2u);
  EXPECT_EQ(PerThread[0].size(), A.size());
  EXPECT_EQ(PerThread[1].size(), B.size());
  // Cross-check per-element routing.
  std::vector<uint64_t> Cursor(2, 0);
  for (uint64_t I = 0; I != Merged.Merged.size(); ++I) {
    uint8_t T = Merged.ThreadIds[I];
    EXPECT_EQ(PerThread[T].at(Cursor[T]), MergedStates.at(I));
    ++Cursor[T];
  }
}

TEST(InterleaveTest, PerThreadDetectionBeatsMergedStream) {
  // Two phase-rich threads; interleaving with a small quantum destroys
  // the merged stream's locality while per-thread detection is immune.
  ExecutionResult E1 = runSource(
      "program a; method main() {"
      "  loop l times 8 { loop p times 500 { branch x0; branch x1; }"
      "  branch s0; branch s1; }"
      "}",
      1);
  ExecutionResult E2 = runSource(
      "program b; method main() {"
      "  loop l times 8 { loop p times 400 { branch y0; branch y1; branch y2; }"
      "  branch t0; branch t1; }"
      "}",
      2);
  std::vector<BaselineSolution> O1 =
      computeBaselines(E1.CallLoop, E1.Branches.size(), {500});
  std::vector<BaselineSolution> O2 =
      computeBaselines(E2.CallLoop, E2.Branches.size(), {500});

  InterleavedTrace Merged =
      interleaveTraces({&E1.Branches, &E2.Branches}, 80, 5);

  DetectorConfig C;
  C.Window.CWSize = 200;
  C.Window.TWSize = 200;
  C.Model = ModelKind::UnweightedSet;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;

  // Merged-stream detection, projected back per thread.
  std::unique_ptr<PhaseDetector> DM =
      makeDetector(C, Merged.Merged.numSites());
  DetectorRun MergedRun = runDetector(*DM, Merged.Merged);
  std::vector<StateSequence> Projected =
      demuxStates(Merged, MergedRun.States);
  double MergedScore =
      (scoreDetection(Projected[0], O1[0].states()).Score +
       scoreDetection(Projected[1], O2[0].states()).Score) /
      2.0;

  // Per-thread detection.
  std::unique_ptr<PhaseDetector> D1 =
      makeDetector(C, E1.Branches.numSites());
  std::unique_ptr<PhaseDetector> D2 =
      makeDetector(C, E2.Branches.numSites());
  double PerThreadScore =
      (scoreDetection(runDetector(*D1, E1.Branches).States,
                      O1[0].states())
           .Score +
       scoreDetection(runDetector(*D2, E2.Branches).States,
                      O2[0].states())
           .Score) /
      2.0;

  EXPECT_GT(PerThreadScore, MergedScore);
}

//===----------------------------------------------------------------------===//
// Sampling
//===----------------------------------------------------------------------===//

TEST(SamplingTest, PeriodOneIsIdentity) {
  BranchTrace T = makeBlockTrace({{0, 50}, {1, 30}}, 2);
  BranchTrace S = sampleTrace(T, 1);
  ASSERT_EQ(S.size(), T.size());
  for (uint64_t I = 0; I != T.size(); ++I)
    EXPECT_EQ(S.sites().element(S[I]), T.sites().element(T[I]));
}

TEST(SamplingTest, KeepsEveryKth) {
  BranchTrace T;
  for (unsigned I = 0; I != 10; ++I)
    T.append(ProfileElement(0, I, true));
  BranchTrace S = sampleTrace(T, 3);
  ASSERT_EQ(S.size(), 4u); // offsets 0, 3, 6, 9
  EXPECT_EQ(S.sites().element(S[1]).bytecodeOffset(), 3u);
  EXPECT_EQ(S.sites().element(S[3]).bytecodeOffset(), 9u);
}

TEST(SamplingTest, StatesSampledConsistently) {
  StateSequence States;
  States.append(PhaseState::Transition, 5);
  States.append(PhaseState::InPhase, 10);
  States.append(PhaseState::Transition, 5);
  StateSequence S = sampleStates(States, 4);
  // Offsets 0,4 (T), 8,12 (P), 16 (T).
  ASSERT_EQ(S.size(), 5u);
  EXPECT_EQ(S.at(0), PhaseState::Transition);
  EXPECT_EQ(S.at(1), PhaseState::Transition);
  EXPECT_EQ(S.at(2), PhaseState::InPhase);
  EXPECT_EQ(S.at(3), PhaseState::InPhase);
  EXPECT_EQ(S.at(4), PhaseState::Transition);
}

TEST(SamplingTest, SampledDetectionStillWorks) {
  ExecutionResult Exec = runSource(
      "program t; method main() {"
      "  loop a times 4000 { branch x0; branch x1; }"
      "  branch s0; branch s1;"
      "  loop b times 4000 { branch y0; branch y1; }"
      "}");
  std::vector<BaselineSolution> Oracle =
      computeBaselines(Exec.CallLoop, Exec.Branches.size(), {1000});
  BranchTrace Sampled = sampleTrace(Exec.Branches, 8);
  StateSequence SampledOracle = sampleStates(Oracle[0].states(), 8);
  ASSERT_EQ(Sampled.size(), SampledOracle.size());

  DetectorConfig C;
  C.Window.CWSize = 60; // 480 unsampled elements
  C.Window.TWSize = 60;
  std::unique_ptr<PhaseDetector> D = makeDetector(C, Sampled.numSites());
  DetectorRun Run = runDetector(*D, Sampled);
  AccuracyScore S = scoreDetection(Run.States, SampledOracle);
  // Two crisp phases survive 8x sampling easily.
  EXPECT_GT(S.Score, 0.7);
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

namespace {

std::unique_ptr<Program> parseOnly(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = compileProgram(Source, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.renderAll();
  return P;
}

} // namespace

TEST(FoldConstantsTest, FoldsLiteralArithmetic) {
  std::unique_ptr<Program> P = parseOnly(
      "program t; method main() { loop times 3 + 4 * 2 { branch a; } }");
  unsigned Folds = foldConstants(*P);
  EXPECT_GE(Folds, 2u); // 4*2 then 3+8
  const auto *Loop =
      dyn_cast<LoopStmt>(P->methods()[0]->body()->stmts()[0].get());
  ASSERT_NE(Loop, nullptr);
  const auto *Lit = dyn_cast<IntLitExpr>(Loop->count());
  ASSERT_NE(Lit, nullptr);
  EXPECT_EQ(Lit->value(), 11);
}

TEST(FoldConstantsTest, LeavesParamsAlone) {
  std::unique_ptr<Program> P = parseOnly(
      "program t; method f(n) { loop times n * (2 + 3) { branch a; } }"
      "method main() { call f(2); }");
  foldConstants(*P);
  const auto *Loop =
      dyn_cast<LoopStmt>(P->methods()[0]->body()->stmts()[0].get());
  const auto *Bin = dyn_cast<BinaryExpr>(Loop->count());
  ASSERT_NE(Bin, nullptr); // n * 5 remains a multiply
  EXPECT_NE(dyn_cast<IntLitExpr>(Bin->rhs()), nullptr);
  EXPECT_EQ(cast<IntLitExpr>(Bin->rhs())->value(), 5);
}

TEST(FoldConstantsTest, PreservesDivisionByZero) {
  std::unique_ptr<Program> P = parseOnly(
      "program t; method main() { loop times 4 / 0 + 1 { branch a; } }");
  unsigned Folds = foldConstants(*P);
  (void)Folds;
  InterpreterOptions Options;
  ExecutionResult R = runProgram(*P, Options);
  EXPECT_EQ(R.Stats.DivByZero, 1u); // still counted at runtime
  EXPECT_EQ(R.Branches.size(), 1u); // 0 + 1 iterations
}

TEST(FoldConstantsTest, ExecutionUnchangedOnWorkloadLikeSource) {
  const char *Source =
      "program t;"
      "method work(sa) {"
      "  loop i times sa * 4 + 10 % 3 {"
      "    when (i % (1 + 1) == 0) { branch a; } else { branch b flip 0.5; }"
      "  }"
      "}"
      "method main() { loop times 2 * 3 { call work(5 + 5); } }";
  std::unique_ptr<Program> Plain = parseOnly(Source);
  std::unique_ptr<Program> Folded = parseOnly(Source);
  unsigned Folds = foldConstants(*Folded);
  EXPECT_GT(Folds, 0u);
  InterpreterOptions Options;
  Options.Seed = 77;
  ExecutionResult A = runProgram(*Plain, Options);
  ExecutionResult B = runProgram(*Folded, Options);
  ASSERT_EQ(A.Branches.size(), B.Branches.size());
  for (uint64_t I = 0; I != A.Branches.size(); ++I)
    ASSERT_EQ(A.Branches.sites().element(A.Branches[I]),
              B.Branches.sites().element(B.Branches[I]));
}

TEST(FoldConstantsTest, FoldedProgramStillPrints) {
  std::unique_ptr<Program> P = parseOnly(
      "program t; method main() { loop times -(2 + 3) + 10 { branch a; } }");
  foldConstants(*P);
  std::string Printed = printProgram(*P);
  std::unique_ptr<Program> Reparsed = parseOnly(Printed);
  ASSERT_NE(Reparsed, nullptr);
  EXPECT_EQ(printProgram(*Reparsed), Printed);
}
