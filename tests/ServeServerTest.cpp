//===- tests/ServeServerTest.cpp - End-to-end server tests ------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PhaseServer over real TCP on an ephemeral port: handshake, streamed
/// equivalence vs offline runDetector, concurrent sessions, idle
/// eviction, graceful drain on stop(), and the at-capacity Overload
/// reject. These are the cross-thread paths ServeSessionTest cannot
/// reach: the I/O thread, the shard workers, and the per-connection
/// handoff between them.
///
//===----------------------------------------------------------------------===//

#include "core/DetectorRunner.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace opd;

namespace {

const SyntheticTrace &testTrace() {
  static const SyntheticTrace T = [] {
    SyntheticSpec Spec;
    Spec.NumPhases = 5;
    Spec.PhaseLength = 3000;
    Spec.TransitionLength = 500;
    Spec.Seed = 11;
    return generateSynthetic(Spec);
  }();
  return T;
}

HelloMsg baseHello(const BranchTrace &Trace) {
  HelloMsg M;
  M.Flags = HelloWantAnchors;
  M.NumSites = Trace.numSites();
  M.Config.Window.CWSize = 150;
  M.Config.Window.TWSize = 150;
  M.Config.Window.SkipFactor = 25;
  return M;
}

void expectRunsEqual(const DetectorRun &Reference, const DetectorRun &Streamed,
                     const std::string &What) {
  ASSERT_EQ(Reference.States.size(), Streamed.States.size()) << What;
  ASSERT_EQ(Reference.States.runs().size(), Streamed.States.runs().size())
      << What;
  for (size_t I = 0; I != Reference.States.runs().size(); ++I) {
    const StateRun &R = Reference.States.runs()[I];
    const StateRun &S = Streamed.States.runs()[I];
    ASSERT_TRUE(R.Begin == S.Begin && R.Length == S.Length &&
                R.State == S.State)
        << What << " run " << I;
  }
  EXPECT_EQ(Reference.DetectedPhases, Streamed.DetectedPhases) << What;
  EXPECT_EQ(Reference.AnchoredPhases, Streamed.AnchoredPhases) << What;
}

TEST(ServeServer, StreamedSessionMatchesOffline) {
  const BranchTrace &Trace = testTrace().Trace;
  ServerOptions Options;
  Options.Shards = 2;
  PhaseServer Server(Options);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;

  HelloMsg Hello = baseHello(Trace);
  DetectorRun Reference;
  {
    std::unique_ptr<PhaseDetector> Ref =
        makeDetector(Hello.Config, Trace.numSites());
    Reference = runDetector(*Ref, Trace);
  }

  // Three wire chunkings, including one that never aligns with batches.
  for (size_t Chunk : {size_t(1u << 16), size_t(997), size_t(64)}) {
    StreamedRun Run;
    ASSERT_TRUE(streamSession(Server.port(), Hello, Trace.elements().data(),
                              Trace.size(), Chunk, Run, Error))
        << Error;
    ASSERT_FALSE(Run.GotError)
        << serveErrorName(Run.Err.Code) << ": " << Run.Err.Message;
    ASSERT_TRUE(Run.GotFinished);
    EXPECT_EQ(Run.Summary.Elements, Trace.size());
    EXPECT_EQ(Run.Ack.BatchSize, Hello.Config.Window.SkipFactor);
    DetectorRun Streamed = streamedToDetectorRun(Run);
    expectRunsEqual(Reference, Streamed,
                    "chunk=" + std::to_string(Chunk));
  }

  Server.stop();
  ServerStats Stats = Server.stats();
  EXPECT_EQ(Stats.Accepted, 3u);
  EXPECT_EQ(Stats.Completed, 3u);
  EXPECT_EQ(Stats.Elements, 3 * Trace.size());
  EXPECT_GT(Stats.BytesIn, 0u);
  EXPECT_GT(Stats.BytesOut, 0u);
}

TEST(ServeServer, ConcurrentSessionsAllVerify) {
  const BranchTrace &Trace = testTrace().Trace;
  ServerOptions Options;
  Options.Shards = 2;
  PhaseServer Server(Options);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;

  HelloMsg Hello = baseHello(Trace);
  DetectorRun Reference;
  {
    std::unique_ptr<PhaseDetector> Ref =
        makeDetector(Hello.Config, Trace.numSites());
    Reference = runDetector(*Ref, Trace);
  }

  constexpr unsigned NumClients = 16;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Clients;
  for (unsigned I = 0; I != NumClients; ++I)
    Clients.emplace_back([&, I] {
      StreamedRun Run;
      std::string Err;
      // Vary the chunking per client so sessions interleave unevenly.
      size_t Chunk = 128 + I * 97;
      if (!streamSession(Server.port(), Hello, Trace.elements().data(),
                         Trace.size(), Chunk, Run, Err) ||
          Run.GotError || !Run.GotFinished) {
        Failures.fetch_add(1);
        return;
      }
      DetectorRun Streamed = streamedToDetectorRun(Run);
      bool Same = Streamed.States.runs().size() ==
                      Reference.States.runs().size() &&
                  Streamed.AnchoredPhases == Reference.AnchoredPhases;
      for (size_t J = 0; Same && J != Reference.States.runs().size(); ++J) {
        const StateRun &A = Reference.States.runs()[J];
        const StateRun &B = Streamed.States.runs()[J];
        Same = A.Begin == B.Begin && A.Length == B.Length &&
               A.State == B.State;
      }
      if (!Same)
        Failures.fetch_add(1);
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);

  Server.stop();
  ServerStats Stats = Server.stats();
  EXPECT_EQ(Stats.Completed, NumClients);
  EXPECT_EQ(Stats.Elements, uint64_t(NumClients) * Trace.size());
  // Every session returned its detector to the pool, and every
  // acquisition was served (hit or build). How many were hits depends on
  // how many sessions were live at once, so only the totals are exact.
  EXPECT_EQ(Stats.Cache.Releases, uint64_t(NumClients));
  EXPECT_EQ(Stats.Cache.Hits + Stats.Cache.Misses, uint64_t(NumClients));
}

TEST(ServeServer, HandshakeRejectOverTcp) {
  ServerOptions Options;
  PhaseServer Server(Options);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;

  HelloMsg Bad;
  Bad.NumSites = 0; // Invalid: empty site space.
  Bad.Config.Window.CWSize = 100;
  Bad.Config.Window.TWSize = 100;
  Bad.Config.Window.SkipFactor = 1;

  StreamedRun Run;
  ASSERT_TRUE(streamSession(Server.port(), Bad, nullptr, 0, 1, Run, Error))
      << Error;
  EXPECT_TRUE(Run.GotError);
  EXPECT_EQ(Run.Err.Code, ServeError::BadConfig);
  EXPECT_FALSE(Run.GotFinished);

  Server.stop();
  EXPECT_EQ(Server.stats().ProtocolErrors, 1u);
}

TEST(ServeServer, IdleSessionsAreEvicted) {
  ServerOptions Options;
  Options.IdleTimeoutSeconds = 0.05;
  PhaseServer Server(Options);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;

  ServeClient Client;
  ASSERT_TRUE(Client.connect(Server.port(), Error)) << Error;
  HelloMsg Hello;
  Hello.NumSites = 10;
  Hello.Config.Window.CWSize = 50;
  Hello.Config.Window.TWSize = 50;
  Hello.Config.Window.SkipFactor = 5;
  ASSERT_TRUE(Client.sendHello(Hello, Error)) << Error;

  // Handshake succeeds, then the client goes silent: the sweep must
  // evict it and deliver Error(Evicted) before the socket closes.
  ServeClient::Event Ev;
  ASSERT_TRUE(Client.recvEvent(Ev, Error)) << Error;
  ASSERT_EQ(Ev.K, ServeClient::Event::Kind::HelloAck);
  ASSERT_TRUE(Client.recvEvent(Ev, Error)) << Error;
  ASSERT_EQ(Ev.K, ServeClient::Event::Kind::Error);
  EXPECT_EQ(Ev.Err.Code, ServeError::Evicted);
  Client.close();

  Server.stop();
  EXPECT_EQ(Server.stats().Evicted, 1u);
}

TEST(ServeServer, StopDrainsPendingTransitions) {
  const BranchTrace &Trace = testTrace().Trace;
  ServerOptions Options;
  Options.Shards = 1;
  PhaseServer Server(Options);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;

  ServeClient Client;
  ASSERT_TRUE(Client.connect(Server.port(), Error)) << Error;
  HelloMsg Hello = baseHello(Trace);
  ASSERT_TRUE(Client.sendHello(Hello, Error)) << Error;
  // Stream a prefix without Finish: the elements sit decided-or-
  // decidable server-side when stop() begins.
  size_t N = 2000;
  ASSERT_TRUE(Client.sendElements(Trace.elements().data(), N, Error)) << Error;

  ServeClient::Event Ev;
  ASSERT_TRUE(Client.recvEvent(Ev, Error)) << Error;
  ASSERT_EQ(Ev.K, ServeClient::Event::Kind::HelloAck);

  // Give the worker a moment to pump the backlog, then drain the server
  // while the client is NOT sending (so the Error frame survives; see
  // docs/SERVING.md on close semantics).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread Stopper([&] { Server.stop(); });

  std::vector<TransitionMsg> Transitions;
  bool SawShutdown = false;
  while (Client.recvEvent(Ev, Error)) {
    if (Ev.K == ServeClient::Event::Kind::Transition)
      Transitions.push_back(Ev.Transition);
    else if (Ev.K == ServeClient::Event::Kind::Error) {
      EXPECT_EQ(Ev.Err.Code, ServeError::Shutdown);
      SawShutdown = true;
    }
  }
  Stopper.join();
  Client.close();
  EXPECT_TRUE(SawShutdown);

  // Every transition the offline detector finds in the first N elements
  // (all batches are full: N % skip == 0) was delivered before close.
  std::unique_ptr<PhaseDetector> Ref =
      makeDetector(Hello.Config, Trace.numSites());
  StateSequence States;
  std::vector<uint64_t> Anchors;
  Ref->reset();
  Ref->consumeTrace(Trace.elements().data(), N, States, Anchors);
  std::vector<uint64_t> ExpectOffsets;
  for (const StateRun &R : States.runs())
    if (R.Begin != 0 || R.State == PhaseState::InPhase)
      ExpectOffsets.push_back(R.Begin);
  ASSERT_EQ(Transitions.size(), ExpectOffsets.size());
  for (size_t I = 0; I != Transitions.size(); ++I)
    EXPECT_EQ(Transitions[I].Offset, ExpectOffsets[I]) << I;

  EXPECT_EQ(Server.stats().DrainClosed, 1u);
  EXPECT_EQ(Server.stats().Elements, N);
}

TEST(ServeServer, OverloadRejectAtSessionCap) {
  ServerOptions Options;
  Options.MaxSessions = 1;
  PhaseServer Server(Options);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;

  // First connection holds the only slot.
  ServeClient First;
  ASSERT_TRUE(First.connect(Server.port(), Error)) << Error;
  HelloMsg Hello;
  Hello.NumSites = 10;
  Hello.Config.Window.CWSize = 50;
  Hello.Config.Window.TWSize = 50;
  Hello.Config.Window.SkipFactor = 5;
  ASSERT_TRUE(First.sendHello(Hello, Error)) << Error;
  ServeClient::Event Ev;
  ASSERT_TRUE(First.recvEvent(Ev, Error)) << Error;
  ASSERT_EQ(Ev.K, ServeClient::Event::Kind::HelloAck);

  // The second is turned away with Overload.
  ServeClient Second;
  ASSERT_TRUE(Second.connect(Server.port(), Error)) << Error;
  ASSERT_TRUE(Second.recvEvent(Ev, Error)) << Error;
  ASSERT_EQ(Ev.K, ServeClient::Event::Kind::Error);
  EXPECT_EQ(Ev.Err.Code, ServeError::Overload);
  Second.close();

  // Releasing the slot lets a third session in.
  First.close();
  for (int Attempt = 0;; ++Attempt) {
    ServeClient Third;
    ASSERT_TRUE(Third.connect(Server.port(), Error)) << Error;
    ASSERT_TRUE(Third.sendHello(Hello, Error)) << Error;
    ASSERT_TRUE(Third.recvEvent(Ev, Error)) << Error;
    if (Ev.K == ServeClient::Event::Kind::HelloAck)
      break;
    // The I/O thread may not have retired the first session yet.
    ASSERT_EQ(Ev.Err.Code, ServeError::Overload);
    ASSERT_LT(Attempt, 100) << "session slot never freed";
    Third.close();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  Server.stop();
}

TEST(ServeServer, StartStopIsIdempotentAndRestartable) {
  ServerOptions Options;
  PhaseServer Server(Options);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;
  EXPECT_TRUE(Server.running());
  uint16_t FirstPort = Server.port();
  EXPECT_NE(FirstPort, 0u);
  Server.stop();
  Server.stop(); // Idempotent.
  EXPECT_FALSE(Server.running());
}

} // namespace
