file(REMOVE_RECURSE
  "libopd_trace.a"
)
