# Empty compiler generated dependencies file for opd_trace.
# This may be replaced when dependencies are built.
