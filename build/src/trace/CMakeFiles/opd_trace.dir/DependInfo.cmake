
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/Sampling.cpp" "src/trace/CMakeFiles/opd_trace.dir/Sampling.cpp.o" "gcc" "src/trace/CMakeFiles/opd_trace.dir/Sampling.cpp.o.d"
  "/root/repo/src/trace/StateSequence.cpp" "src/trace/CMakeFiles/opd_trace.dir/StateSequence.cpp.o" "gcc" "src/trace/CMakeFiles/opd_trace.dir/StateSequence.cpp.o.d"
  "/root/repo/src/trace/TraceIO.cpp" "src/trace/CMakeFiles/opd_trace.dir/TraceIO.cpp.o" "gcc" "src/trace/CMakeFiles/opd_trace.dir/TraceIO.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/opd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
