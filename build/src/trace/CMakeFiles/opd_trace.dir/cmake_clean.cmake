file(REMOVE_RECURSE
  "CMakeFiles/opd_trace.dir/Sampling.cpp.o"
  "CMakeFiles/opd_trace.dir/Sampling.cpp.o.d"
  "CMakeFiles/opd_trace.dir/StateSequence.cpp.o"
  "CMakeFiles/opd_trace.dir/StateSequence.cpp.o.d"
  "CMakeFiles/opd_trace.dir/TraceIO.cpp.o"
  "CMakeFiles/opd_trace.dir/TraceIO.cpp.o.d"
  "libopd_trace.a"
  "libopd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
