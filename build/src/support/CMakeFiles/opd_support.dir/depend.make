# Empty dependencies file for opd_support.
# This may be replaced when dependencies are built.
