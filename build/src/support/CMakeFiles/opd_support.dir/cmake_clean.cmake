file(REMOVE_RECURSE
  "CMakeFiles/opd_support.dir/ArgParser.cpp.o"
  "CMakeFiles/opd_support.dir/ArgParser.cpp.o.d"
  "CMakeFiles/opd_support.dir/Format.cpp.o"
  "CMakeFiles/opd_support.dir/Format.cpp.o.d"
  "CMakeFiles/opd_support.dir/Parallel.cpp.o"
  "CMakeFiles/opd_support.dir/Parallel.cpp.o.d"
  "CMakeFiles/opd_support.dir/Table.cpp.o"
  "CMakeFiles/opd_support.dir/Table.cpp.o.d"
  "libopd_support.a"
  "libopd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
