file(REMOVE_RECURSE
  "libopd_support.a"
)
