file(REMOVE_RECURSE
  "CMakeFiles/opd_baseline.dir/BaselineSolution.cpp.o"
  "CMakeFiles/opd_baseline.dir/BaselineSolution.cpp.o.d"
  "CMakeFiles/opd_baseline.dir/InstanceTree.cpp.o"
  "CMakeFiles/opd_baseline.dir/InstanceTree.cpp.o.d"
  "libopd_baseline.a"
  "libopd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
