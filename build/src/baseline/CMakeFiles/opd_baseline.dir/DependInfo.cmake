
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/BaselineSolution.cpp" "src/baseline/CMakeFiles/opd_baseline.dir/BaselineSolution.cpp.o" "gcc" "src/baseline/CMakeFiles/opd_baseline.dir/BaselineSolution.cpp.o.d"
  "/root/repo/src/baseline/InstanceTree.cpp" "src/baseline/CMakeFiles/opd_baseline.dir/InstanceTree.cpp.o" "gcc" "src/baseline/CMakeFiles/opd_baseline.dir/InstanceTree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/opd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/opd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
