file(REMOVE_RECURSE
  "libopd_baseline.a"
)
