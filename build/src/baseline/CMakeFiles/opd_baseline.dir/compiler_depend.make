# Empty compiler generated dependencies file for opd_baseline.
# This may be replaced when dependencies are built.
