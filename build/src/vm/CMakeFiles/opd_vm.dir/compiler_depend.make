# Empty compiler generated dependencies file for opd_vm.
# This may be replaced when dependencies are built.
