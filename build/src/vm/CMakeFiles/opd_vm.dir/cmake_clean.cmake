file(REMOVE_RECURSE
  "CMakeFiles/opd_vm.dir/Interleave.cpp.o"
  "CMakeFiles/opd_vm.dir/Interleave.cpp.o.d"
  "CMakeFiles/opd_vm.dir/Interpreter.cpp.o"
  "CMakeFiles/opd_vm.dir/Interpreter.cpp.o.d"
  "libopd_vm.a"
  "libopd_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opd_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
