file(REMOVE_RECURSE
  "libopd_vm.a"
)
