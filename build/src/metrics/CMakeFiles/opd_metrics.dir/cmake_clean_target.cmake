file(REMOVE_RECURSE
  "libopd_metrics.a"
)
