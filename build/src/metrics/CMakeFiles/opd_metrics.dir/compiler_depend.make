# Empty compiler generated dependencies file for opd_metrics.
# This may be replaced when dependencies are built.
