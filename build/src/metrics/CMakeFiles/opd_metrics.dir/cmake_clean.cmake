file(REMOVE_RECURSE
  "CMakeFiles/opd_metrics.dir/Latency.cpp.o"
  "CMakeFiles/opd_metrics.dir/Latency.cpp.o.d"
  "CMakeFiles/opd_metrics.dir/Scoring.cpp.o"
  "CMakeFiles/opd_metrics.dir/Scoring.cpp.o.d"
  "CMakeFiles/opd_metrics.dir/Stability.cpp.o"
  "CMakeFiles/opd_metrics.dir/Stability.cpp.o.d"
  "CMakeFiles/opd_metrics.dir/Timeline.cpp.o"
  "CMakeFiles/opd_metrics.dir/Timeline.cpp.o.d"
  "libopd_metrics.a"
  "libopd_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opd_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
