
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/Latency.cpp" "src/metrics/CMakeFiles/opd_metrics.dir/Latency.cpp.o" "gcc" "src/metrics/CMakeFiles/opd_metrics.dir/Latency.cpp.o.d"
  "/root/repo/src/metrics/Scoring.cpp" "src/metrics/CMakeFiles/opd_metrics.dir/Scoring.cpp.o" "gcc" "src/metrics/CMakeFiles/opd_metrics.dir/Scoring.cpp.o.d"
  "/root/repo/src/metrics/Stability.cpp" "src/metrics/CMakeFiles/opd_metrics.dir/Stability.cpp.o" "gcc" "src/metrics/CMakeFiles/opd_metrics.dir/Stability.cpp.o.d"
  "/root/repo/src/metrics/Timeline.cpp" "src/metrics/CMakeFiles/opd_metrics.dir/Timeline.cpp.o" "gcc" "src/metrics/CMakeFiles/opd_metrics.dir/Timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/opd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/opd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
