# Empty dependencies file for opd_lang.
# This may be replaced when dependencies are built.
