file(REMOVE_RECURSE
  "libopd_lang.a"
)
