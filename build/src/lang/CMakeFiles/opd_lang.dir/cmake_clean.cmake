file(REMOVE_RECURSE
  "CMakeFiles/opd_lang.dir/AST.cpp.o"
  "CMakeFiles/opd_lang.dir/AST.cpp.o.d"
  "CMakeFiles/opd_lang.dir/Lexer.cpp.o"
  "CMakeFiles/opd_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/opd_lang.dir/Parser.cpp.o"
  "CMakeFiles/opd_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/opd_lang.dir/Printer.cpp.o"
  "CMakeFiles/opd_lang.dir/Printer.cpp.o.d"
  "CMakeFiles/opd_lang.dir/ProgramInfo.cpp.o"
  "CMakeFiles/opd_lang.dir/ProgramInfo.cpp.o.d"
  "CMakeFiles/opd_lang.dir/Sema.cpp.o"
  "CMakeFiles/opd_lang.dir/Sema.cpp.o.d"
  "CMakeFiles/opd_lang.dir/Transforms.cpp.o"
  "CMakeFiles/opd_lang.dir/Transforms.cpp.o.d"
  "libopd_lang.a"
  "libopd_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opd_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
