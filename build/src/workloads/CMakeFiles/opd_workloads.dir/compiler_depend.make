# Empty compiler generated dependencies file for opd_workloads.
# This may be replaced when dependencies are built.
