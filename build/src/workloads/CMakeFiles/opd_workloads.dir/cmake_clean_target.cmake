file(REMOVE_RECURSE
  "libopd_workloads.a"
)
