file(REMOVE_RECURSE
  "CMakeFiles/opd_workloads.dir/Synthetic.cpp.o"
  "CMakeFiles/opd_workloads.dir/Synthetic.cpp.o.d"
  "CMakeFiles/opd_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/opd_workloads.dir/Workloads.cpp.o.d"
  "libopd_workloads.a"
  "libopd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
