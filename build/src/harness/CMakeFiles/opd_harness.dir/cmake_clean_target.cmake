file(REMOVE_RECURSE
  "libopd_harness.a"
)
