file(REMOVE_RECURSE
  "CMakeFiles/opd_harness.dir/Experiment.cpp.o"
  "CMakeFiles/opd_harness.dir/Experiment.cpp.o.d"
  "CMakeFiles/opd_harness.dir/Sweep.cpp.o"
  "CMakeFiles/opd_harness.dir/Sweep.cpp.o.d"
  "libopd_harness.a"
  "libopd_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opd_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
