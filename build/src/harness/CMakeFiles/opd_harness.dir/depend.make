# Empty dependencies file for opd_harness.
# This may be replaced when dependencies are built.
