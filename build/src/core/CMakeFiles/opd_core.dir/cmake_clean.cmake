file(REMOVE_RECURSE
  "CMakeFiles/opd_core.dir/Analyzer.cpp.o"
  "CMakeFiles/opd_core.dir/Analyzer.cpp.o.d"
  "CMakeFiles/opd_core.dir/DetectorConfig.cpp.o"
  "CMakeFiles/opd_core.dir/DetectorConfig.cpp.o.d"
  "CMakeFiles/opd_core.dir/DetectorRunner.cpp.o"
  "CMakeFiles/opd_core.dir/DetectorRunner.cpp.o.d"
  "CMakeFiles/opd_core.dir/MultiScale.cpp.o"
  "CMakeFiles/opd_core.dir/MultiScale.cpp.o.d"
  "CMakeFiles/opd_core.dir/OfflineClustering.cpp.o"
  "CMakeFiles/opd_core.dir/OfflineClustering.cpp.o.d"
  "CMakeFiles/opd_core.dir/PhaseDetector.cpp.o"
  "CMakeFiles/opd_core.dir/PhaseDetector.cpp.o.d"
  "CMakeFiles/opd_core.dir/PhaseMonitor.cpp.o"
  "CMakeFiles/opd_core.dir/PhaseMonitor.cpp.o.d"
  "CMakeFiles/opd_core.dir/PhasePredictor.cpp.o"
  "CMakeFiles/opd_core.dir/PhasePredictor.cpp.o.d"
  "CMakeFiles/opd_core.dir/RecurringPhases.cpp.o"
  "CMakeFiles/opd_core.dir/RecurringPhases.cpp.o.d"
  "CMakeFiles/opd_core.dir/RelatedWork.cpp.o"
  "CMakeFiles/opd_core.dir/RelatedWork.cpp.o.d"
  "CMakeFiles/opd_core.dir/SimilarityKernel.cpp.o"
  "CMakeFiles/opd_core.dir/SimilarityKernel.cpp.o.d"
  "CMakeFiles/opd_core.dir/WindowedModel.cpp.o"
  "CMakeFiles/opd_core.dir/WindowedModel.cpp.o.d"
  "libopd_core.a"
  "libopd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
