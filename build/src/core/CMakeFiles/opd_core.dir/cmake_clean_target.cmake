file(REMOVE_RECURSE
  "libopd_core.a"
)
