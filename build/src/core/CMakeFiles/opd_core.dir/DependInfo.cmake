
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Analyzer.cpp" "src/core/CMakeFiles/opd_core.dir/Analyzer.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/Analyzer.cpp.o.d"
  "/root/repo/src/core/DetectorConfig.cpp" "src/core/CMakeFiles/opd_core.dir/DetectorConfig.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/DetectorConfig.cpp.o.d"
  "/root/repo/src/core/DetectorRunner.cpp" "src/core/CMakeFiles/opd_core.dir/DetectorRunner.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/DetectorRunner.cpp.o.d"
  "/root/repo/src/core/MultiScale.cpp" "src/core/CMakeFiles/opd_core.dir/MultiScale.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/MultiScale.cpp.o.d"
  "/root/repo/src/core/OfflineClustering.cpp" "src/core/CMakeFiles/opd_core.dir/OfflineClustering.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/OfflineClustering.cpp.o.d"
  "/root/repo/src/core/PhaseDetector.cpp" "src/core/CMakeFiles/opd_core.dir/PhaseDetector.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/PhaseDetector.cpp.o.d"
  "/root/repo/src/core/PhaseMonitor.cpp" "src/core/CMakeFiles/opd_core.dir/PhaseMonitor.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/PhaseMonitor.cpp.o.d"
  "/root/repo/src/core/PhasePredictor.cpp" "src/core/CMakeFiles/opd_core.dir/PhasePredictor.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/PhasePredictor.cpp.o.d"
  "/root/repo/src/core/RecurringPhases.cpp" "src/core/CMakeFiles/opd_core.dir/RecurringPhases.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/RecurringPhases.cpp.o.d"
  "/root/repo/src/core/RelatedWork.cpp" "src/core/CMakeFiles/opd_core.dir/RelatedWork.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/RelatedWork.cpp.o.d"
  "/root/repo/src/core/SimilarityKernel.cpp" "src/core/CMakeFiles/opd_core.dir/SimilarityKernel.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/SimilarityKernel.cpp.o.d"
  "/root/repo/src/core/WindowedModel.cpp" "src/core/CMakeFiles/opd_core.dir/WindowedModel.cpp.o" "gcc" "src/core/CMakeFiles/opd_core.dir/WindowedModel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/opd_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/opd_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
