# Empty compiler generated dependencies file for opd_core.
# This may be replaced when dependencies are built.
