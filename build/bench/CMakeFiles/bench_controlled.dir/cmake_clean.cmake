file(REMOVE_RECURSE
  "CMakeFiles/bench_controlled.dir/BenchControlled.cpp.o"
  "CMakeFiles/bench_controlled.dir/BenchControlled.cpp.o.d"
  "bench_controlled"
  "bench_controlled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
