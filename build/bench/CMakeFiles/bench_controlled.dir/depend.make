# Empty dependencies file for bench_controlled.
# This may be replaced when dependencies are built.
