# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/core_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/core_detector_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
include("/root/repo/build/tests/advanced_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/timeline_test[1]_include.cmake")
include("/root/repo/build/tests/offline_test[1]_include.cmake")
include("/root/repo/build/tests/edgecase_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/lang_depth_test[1]_include.cmake")
