file(REMOVE_RECURSE
  "CMakeFiles/lang_depth_test.dir/LangDepthTest.cpp.o"
  "CMakeFiles/lang_depth_test.dir/LangDepthTest.cpp.o.d"
  "lang_depth_test"
  "lang_depth_test.pdb"
  "lang_depth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_depth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
