
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/LangDepthTest.cpp" "tests/CMakeFiles/lang_depth_test.dir/LangDepthTest.cpp.o" "gcc" "tests/CMakeFiles/lang_depth_test.dir/LangDepthTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/opd_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/opd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/opd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/opd_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/opd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/opd_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/opd_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/opd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/opd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
