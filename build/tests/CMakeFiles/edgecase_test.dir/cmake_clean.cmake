file(REMOVE_RECURSE
  "CMakeFiles/edgecase_test.dir/EdgeCaseTest.cpp.o"
  "CMakeFiles/edgecase_test.dir/EdgeCaseTest.cpp.o.d"
  "edgecase_test"
  "edgecase_test.pdb"
  "edgecase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgecase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
