# Empty compiler generated dependencies file for core_kernel_test.
# This may be replaced when dependencies are built.
