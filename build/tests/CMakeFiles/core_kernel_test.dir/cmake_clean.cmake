file(REMOVE_RECURSE
  "CMakeFiles/core_kernel_test.dir/CoreKernelTest.cpp.o"
  "CMakeFiles/core_kernel_test.dir/CoreKernelTest.cpp.o.d"
  "core_kernel_test"
  "core_kernel_test.pdb"
  "core_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
