//===- examples/jp_lint.cpp - Static phase-structure linter -------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lints JP workload sources against the static-analysis catalogue
/// (analysis/Lint.h): dead methods, unreachable arms, trace-budget
/// violations, recursion cycles, and (with --mpl) phases too short for
/// the oracle to select. Optionally (--predict) reports the statically
/// predicted phase structure.
///
///   jp_lint examples/sample.jp
///   jp_lint --json --mpl 1K examples/*.jp
///
/// Exit codes: 0 clean (or notes only), 1 warnings, 2 errors (compile
/// failures included).
///
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "analysis/StaticPhasePredictor.h"
#include "lang/Diagnostics.h"
#include "lang/Sema.h"
#include "support/ArgParser.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace opd;

namespace {

/// Lints one file; returns its exit code.
int lintFile(const std::string &Path, const LintOptions &Options,
             bool Json, bool Predict, uint64_t PredictMPL) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = compileProgram(Buffer.str(), Diags);
  if (Prog)
    lintProgram(*Prog, Options, Diags);

  if (Json) {
    std::fputs(renderDiagnosticsJSON(Diags, Path).c_str(), stdout);
  } else {
    for (const Diagnostic &D : Diags.diagnostics())
      std::printf("%s:%s\n", Path.c_str(), D.render().c_str());
    if (Diags.empty())
      std::printf("%s: clean\n", Path.c_str());
  }

  if (!Prog)
    return 2;

  if (Predict && !Json) {
    StaticPrediction Prediction = simulateProgram(*Prog);
    std::vector<PhaseInterval> Phases =
        predictPhases(Prediction, PredictMPL);
    std::printf("%s: predicted %s elements (%s), %zu phases at MPL %s\n",
                Path.c_str(),
                formatCount(Prediction.PredictedElements).c_str(),
                Prediction.Exact ? "exact" : "approximate", Phases.size(),
                formatAbbrev(PredictMPL).c_str());
    for (const PhaseInterval &P : Phases)
      std::printf("  [%12s, %12s)  len %10s\n",
                  formatCount(P.Begin).c_str(), formatCount(P.End).c_str(),
                  formatCount(P.length()).c_str());
  }

  return exitCodeForSeverity(Diags.maxSeverity(), !Diags.empty());
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("jp_lint",
                 "Statically analyze JP workload sources for phase-"
                 "structure defects.");
  Args.addFlag("json", "emit structured JSON diagnostics");
  Args.addFlag("predict", "also print the statically predicted phases");
  Args.addOption("mpl", "minimum phase length for short-phase checks "
                        "(0 disables; K suffix ok)",
                 "0");
  Args.addOption("budget", "trace element budget for unbounded-loop",
                 "100000K");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 2;
  if (Args.positional().empty()) {
    std::fprintf(stderr, "usage: jp_lint [options] file.jp...\n%s",
                 Args.usage().c_str());
    return 2;
  }

  LintOptions Options;
  Options.MPL = static_cast<uint64_t>(std::max(0L, Args.getInt("mpl", 0)));
  long Budget = Args.getInt("budget", 100000000L);
  if (Budget > 0)
    Options.ElementBudget = static_cast<uint64_t>(Budget);

  // Predicted phases need an MPL; reuse --mpl, defaulting to 1000.
  uint64_t PredictMPL = Options.MPL > 0 ? Options.MPL : 1000;

  int Exit = 0;
  for (const std::string &Path : Args.positional())
    Exit = std::max(Exit, lintFile(Path, Options, Args.getFlag("json"),
                                   Args.getFlag("predict"), PredictMPL));
  return Exit;
}
