//===- examples/inspect_tool.cpp - Detector run introspection -----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one detector configuration over a workload with a RunTrace
/// observer attached and dumps the annotated timeline: per-evaluation
/// similarity values, anchor computations, window resizes/flushes, and
/// phase open/close transitions, plus the aggregated counters. The
/// JSON/CSV schemas are specified in docs/OBSERVABILITY.md.
///
///   inspect_tool examples/sample.jp --cw 500 --json sample.trace.json
///   inspect_tool --workload jess --policy adaptive --json -
///   inspect_tool examples/sample.jp --cw 500 --events 20
///
//===----------------------------------------------------------------------===//

#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"
#include "lang/Diagnostics.h"
#include "lang/Sema.h"
#include "obs/TraceExport.h"
#include "support/ArgParser.h"
#include "support/Format.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

using namespace opd;

namespace {

/// Builds the detector configuration from the flags; returns false on an
/// unknown enum name.
bool configFromArgs(const ArgParser &Args, DetectorConfig &Config) {
  Config.Window.CWSize = static_cast<uint32_t>(Args.getInt("cw", 5000));
  const std::string &TW = Args.getOption("tw");
  Config.Window.TWSize = TW.empty()
                             ? Config.Window.CWSize
                             : static_cast<uint32_t>(std::stoul(TW));
  Config.Window.SkipFactor = static_cast<uint32_t>(Args.getInt("skip", 1));
  if (Config.Window.CWSize == 0 || Config.Window.TWSize == 0 ||
      Config.Window.SkipFactor == 0) {
    std::fprintf(stderr, "error: --cw, --tw and --skip must be positive\n");
    return false;
  }

  const std::string &Policy = Args.getOption("policy");
  if (Policy == "constant")
    Config.Window.TWPolicy = TWPolicyKind::Constant;
  else if (Policy == "adaptive")
    Config.Window.TWPolicy = TWPolicyKind::Adaptive;
  else
    return false;

  const std::string &Anchor = Args.getOption("anchor");
  if (Anchor == "rn")
    Config.Window.Anchor = AnchorKind::RightmostNoisy;
  else if (Anchor == "lnn")
    Config.Window.Anchor = AnchorKind::LeftmostNonNoisy;
  else
    return false;

  const std::string &Resize = Args.getOption("resize");
  if (Resize == "slide")
    Config.Window.Resize = ResizeKind::Slide;
  else if (Resize == "move")
    Config.Window.Resize = ResizeKind::Move;
  else
    return false;

  const std::string &Model = Args.getOption("model");
  if (Model == "unweighted")
    Config.Model = ModelKind::UnweightedSet;
  else if (Model == "weighted")
    Config.Model = ModelKind::WeightedSet;
  else if (Model == "manhattan")
    Config.Model = ModelKind::ManhattanBBV;
  else
    return false;

  const std::string &Analyzer = Args.getOption("analyzer");
  if (Analyzer == "threshold")
    Config.TheAnalyzer = AnalyzerKind::Threshold;
  else if (Analyzer == "average")
    Config.TheAnalyzer = AnalyzerKind::Average;
  else if (Analyzer == "hysteresis")
    Config.TheAnalyzer = AnalyzerKind::Hysteresis;
  else
    return false;
  Config.AnalyzerParam = Args.getDouble("param", 0.6);
  return true;
}

/// Writes \p Content to \p Path, or stdout when Path is "-".
int emit(const std::string &Path, const std::string &Content,
         const char *What) {
  if (Path == "-") {
    std::fputs(Content.c_str(), stdout);
    return 0;
  }
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 1;
  }
  Out << Content;
  std::fprintf(stderr, "inspect_tool: wrote %s timeline to %s\n", What,
               Path.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("inspect_tool",
                 "Run one detector over a workload (or a .jp file, given "
                 "as a positional argument) and dump the observed "
                 "timeline.");
  Args.addOption("workload", "named workload (compress, jess, ...)", "jess");
  Args.addOption("scale", "workload scale factor", "0.5");
  Args.addOption("seed", "interpreter seed for .jp files", "1");
  Args.addOption("cw", "current window size", "5000");
  Args.addOption("tw", "trailing window size (default: = cw)", "");
  Args.addOption("skip", "skip factor", "1");
  Args.addOption("policy", "trailing window policy: constant|adaptive",
                 "adaptive");
  Args.addOption("anchor", "anchor policy: rn|lnn", "rn");
  Args.addOption("resize", "resize policy: slide|move", "slide");
  Args.addOption("model",
                 "similarity model: unweighted|weighted|manhattan",
                 "unweighted");
  Args.addOption("analyzer", "analyzer: threshold|average|hysteresis",
                 "threshold");
  Args.addOption("param", "analyzer parameter (threshold or delta)", "0.6");
  Args.addOption("json", "write the JSON timeline here ('-' = stdout)", "");
  Args.addOption("csv", "write the CSV timeline here ('-' = stdout)", "");
  Args.addOption("events", "print the first N events as a table", "0");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 1;

  // Obtain the trace: positional .jp file or named workload.
  Stopwatch Timer;
  ExecutionResult Exec;
  std::string SourceName;
  if (!Args.positional().empty()) {
    SourceName = Args.positional().front();
    std::ifstream In(SourceName);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", SourceName.c_str());
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    DiagnosticEngine Diags;
    std::unique_ptr<Program> Prog = compileProgram(Buffer.str(), Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s: compile errors:\n%s", SourceName.c_str(),
                   Diags.renderAll().c_str());
      return 1;
    }
    InterpreterOptions Options;
    Options.Seed = static_cast<uint64_t>(Args.getInt("seed", 1));
    Exec = runProgram(*Prog, Options);
  } else {
    SourceName = Args.getOption("workload");
    const Workload *W = findWorkload(SourceName);
    if (!W) {
      std::fprintf(stderr, "error: unknown workload '%s'\n",
                   SourceName.c_str());
      return 1;
    }
    Exec = executeWorkload(*W, Args.getDouble("scale", 0.5));
  }
  double ExecuteSeconds = Timer.seconds();

  DetectorConfig Config;
  if (!configFromArgs(Args, Config)) {
    std::fprintf(stderr, "error: bad detector configuration; try --help\n");
    return 1;
  }
  std::unique_ptr<PhaseDetector> Detector =
      makeDetector(Config, Exec.Branches.numSites());

  // The observed run. RunTrace's phase intervals match
  // Run.DetectedPhases by construction; verify anyway so the exported
  // timeline is guaranteed consistent with the unobserved pipeline.
  RunTrace Trace;
  Trace.setDetectorName(Detector->describe());
  Timer.restart();
  DetectorRun Run = runDetector(*Detector, Exec.Branches, &Trace);
  double DetectSeconds = Timer.seconds();
  if (Trace.phases() != Run.DetectedPhases) {
    std::fprintf(stderr,
                 "error: observed phases diverge from DetectedPhases\n");
    return 1;
  }

  // Summary to stderr so --json - / --csv - stay clean on stdout.
  const RunCounters &C = Trace.counters();
  std::fprintf(stderr, "%s: %s elements via %s\n", SourceName.c_str(),
               formatCount(C.Elements).c_str(),
               Detector->describe().c_str());
  std::fprintf(stderr,
               "  %s evaluations, %s phases (%s anchor-corrected), %s "
               "resizes, %s flushes\n",
               formatCount(C.Evaluations).c_str(),
               formatCount(C.PhasesOpened).c_str(),
               formatCount(C.AnchorCorrections).c_str(),
               formatCount(C.WindowResizes).c_str(),
               formatCount(C.WindowFlushes).c_str());
  double MElemPerSec =
      DetectSeconds > 0.0
          ? static_cast<double>(C.Elements) / DetectSeconds / 1e6
          : 0.0;
  std::fprintf(stderr,
               "  execute %s ms, detect %s ms (%s Melem/s), %zu events "
               "recorded\n",
               formatDouble(ExecuteSeconds * 1e3, 1).c_str(),
               formatDouble(DetectSeconds * 1e3, 1).c_str(),
               formatDouble(MElemPerSec, 1).c_str(),
               Trace.events().size());

  long MaxEvents = Args.getInt("events", 0);
  if (MaxEvents > 0) {
    Table T("First events");
    T.setHeader({"#", "event", "offset", "similarity", "state", "detail"});
    const std::vector<TraceEvent> &Events = Trace.events();
    for (size_t I = 0;
         I != std::min<size_t>(Events.size(), static_cast<size_t>(MaxEvents));
         ++I) {
      const TraceEvent &E = Events[I];
      std::string Similarity, State, Detail;
      switch (E.Kind) {
      case TraceEventKind::Evaluation:
        Similarity = formatDouble(E.Similarity, 4);
        State = E.Decision == PhaseState::InPhase ? "P" : "T";
        break;
      case TraceEventKind::Anchor:
        Detail = std::string(anchorKindName(
                     static_cast<AnchorKind>(E.Policy))) +
                 " -> " + std::to_string(E.A);
        break;
      case TraceEventKind::WindowResize:
        Detail = std::string(resizeKindName(
                     static_cast<ResizeKind>(E.Policy))) +
                 " tw=" + std::to_string(E.A) +
                 " cw=" + std::to_string(E.B);
        break;
      case TraceEventKind::WindowFlush:
        Detail = "seed=" + std::to_string(E.A);
        break;
      case TraceEventKind::PhaseBegin:
        Detail = "anchor=" + std::to_string(E.A);
        break;
      case TraceEventKind::RunBegin:
        Detail = std::to_string(E.A) + " elements, batch " +
                 std::to_string(E.B);
        break;
      default:
        break;
      }
      T.addRow({std::to_string(I), traceEventKindName(E.Kind),
                std::to_string(E.Offset), Similarity, State, Detail});
    }
    std::fputs(T.render().c_str(), stderr);
  }

  const std::string &JSONPath = Args.getOption("json");
  if (!JSONPath.empty())
    if (int RC = emit(JSONPath, renderRunTraceJSON(Trace), "JSON"))
      return RC;
  const std::string &CSVPath = Args.getOption("csv");
  if (!CSVPath.empty())
    if (int RC = emit(CSVPath, renderRunTraceCSV(Trace), "CSV"))
      return RC;
  return 0;
}
