//===- examples/serve_check.cpp - Serve-protocol model checker ------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model-checks the serve wire protocol and cross-checks the model
/// against reality in three directions (docs/ANALYSIS.md documents the
/// diagnostic catalogue):
///
///   serve_check                      # invariants on the protocol model
///   serve_check --impl               # + replay every model edge on a
///                                    #   real ServeSession
///   serve_check --doc docs/SERVING.md  # + diff the normative doc tables
///   serve_check --fuzz 300 --seed 7  # + model-guided adversarial fuzz
///   serve_check --json               # structured diagnostics
///
/// The invariant pass always runs; --impl/--doc/--fuzz add conformance
/// passes on top. Exit codes follow jp_lint/config_check: 0 clean
/// (or notes only), 1 warnings, 2 errors.
///
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "analysis/ProtocolCheck.h"
#include "analysis/ProtocolConformance.h"
#include "support/ArgParser.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace opd;

static bool readFileInto(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) != 0)
    Out.append(Buf, N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

int main(int Argc, char **Argv) {
  ArgParser Args("serve_check",
                 "Model-check the serve wire protocol and cross-check "
                 "implementation, documentation, and fuzz conformance.");
  Args.addOption("batch", "model batch size (detector skip factor)", "3");
  Args.addOption("watermark", "ingress high watermark in elements", "8");
  Args.addOption("max-frame", "largest Elements count one frame carries",
                 "5");
  Args.addFlag("impl", "replay every model edge on a real ServeSession");
  Args.addOption("doc", "diff the normative tables of this SERVING.md "
                        "against the model",
                 "");
  Args.addOption("fuzz", "run N model-guided adversarial sessions", "0");
  Args.addOption("seed", "PRNG seed for --fuzz (reproducible runs)", "1");
  Args.addFlag("stats", "print exploration statistics");
  Args.addFlag("json", "emit structured JSON diagnostics");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 2;

  ProtocolParams Params;
  Params.Batch = static_cast<uint32_t>(
      std::strtoul(Args.getOption("batch").c_str(), nullptr, 10));
  Params.HighWatermark = static_cast<uint32_t>(
      std::strtoul(Args.getOption("watermark").c_str(), nullptr, 10));
  Params.MaxFrameElements = static_cast<uint32_t>(
      std::strtoul(Args.getOption("max-frame").c_str(), nullptr, 10));
  if (Params.Batch == 0 || Params.HighWatermark == 0 ||
      Params.MaxFrameElements == 0) {
    std::fprintf(stderr,
                 "serve_check: --batch, --watermark, and --max-frame must "
                 "be positive\n");
    return 2;
  }

  ProtocolModel Model(Params);
  DiagnosticEngine Diags;

  ProtoExploration Ex = checkProtocolModel(Model, {}, Diags);

  if (Args.getFlag("impl"))
    checkImplConformance(Model, Diags);

  std::string DocPath = Args.getOption("doc");
  if (!DocPath.empty()) {
    std::string DocText;
    if (!readFileInto(DocPath, DocText)) {
      std::fprintf(stderr, "serve_check: cannot read '%s'\n",
                   DocPath.c_str());
      return 2;
    }
    checkDocConformance(Model, DocText, Diags);
  }

  unsigned FuzzIters = static_cast<unsigned>(
      std::strtoul(Args.getOption("fuzz").c_str(), nullptr, 10));
  if (FuzzIters != 0) {
    ProtocolFuzzOptions FuzzOptions;
    FuzzOptions.Seed =
        std::strtoull(Args.getOption("seed").c_str(), nullptr, 10);
    FuzzOptions.Iterations = FuzzIters;
    fuzzProtocolConformance(FuzzOptions, Diags);
  }

  const std::string Name = "serve-protocol";
  if (Args.getFlag("json")) {
    std::fputs(renderDiagnosticsJSON(Diags, Name).c_str(), stdout);
  } else {
    for (const Diagnostic &D : Diags.diagnostics())
      std::printf("%s:%s\n", Name.c_str(), D.render().c_str());
    if (Diags.empty())
      std::printf("%s: clean\n", Name.c_str());
    if (Args.getFlag("stats"))
      std::printf("%s: %zu reachable configurations, %zu edges "
                  "(batch=%u watermark=%u max-frame=%u)\n",
                  Name.c_str(), Ex.States.size(), Ex.Edges.size(),
                  Params.Batch, Params.HighWatermark,
                  Params.MaxFrameElements);
  }

  return exitCodeForSeverity(Diags.maxSeverity(), !Diags.empty());
}
