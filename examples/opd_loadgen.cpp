//===- examples/opd_loadgen.cpp - Serving load generator --------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// Load generator and latency harness for opd_serve: replays a bundled
// workload's branch trace over N concurrent sessions (poll-multiplexed
// in one thread, so a thousand sessions need no thousand threads) and
// reports batch-acknowledgement latency percentiles, per-session
// completion-time percentiles, and aggregate served elements/sec. With
// --verify every session's streamed transition events are rebuilt into a
// DetectorRun and compared, state run by state run, against offline
// runDetector() on the same trace — the serving equivalence contract.
//
// The serving_vs_offline_ratio it reports (served elements/sec divided
// by one offline fast-detector thread's elements/sec, measured in the
// same process) is what scripts/check_perf.py tracks: a machine-relative
// measure of protocol + scheduling overhead.
//
//===----------------------------------------------------------------------===//

#include "core/FastDetector.h"
#include "serve/Client.h"
#include "support/ArgParser.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace opd;

namespace {

using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point From, Clock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

/// One multiplexed client session driven by the poll loop.
struct LoadSession {
  enum class Phase : uint8_t { Connecting, Running, Done, Failed, Drained };
  Phase Ph = Phase::Connecting;
  int Fd = -1;

  size_t NextElem = 0;     ///< Next trace offset to frame.
  bool FinishQueued = false;
  std::vector<uint8_t> OutBuf;
  size_t OutPos = 0;
  /// Ingest total the currently-draining chunk completes; becomes an
  /// InFlight entry the moment its last byte hits the socket.
  uint64_t PendingTarget = 0;
  /// (ingest target, send-completion time) awaiting a Progress ack.
  std::deque<std::pair<uint64_t, Clock::time_point>> InFlight;

  FrameReader Reader;
  StreamedRun Run;
  Clock::time_point Start, End;
  std::string Error;
};

struct Options {
  uint16_t Port = 0;
  size_t Concurrent = 8;
  size_t Total = 8;
  std::string WorkloadName = "db";
  double Scale = 1.0;
  size_t Chunk = 4096;
  DetectorConfig Config;
  bool Verify = false;
  bool TolerateShutdown = false;
  bool Json = false;
  int OfflineReps = 3;
};

double percentile(std::vector<double> &Samples, double P) {
  if (Samples.empty())
    return 0.0;
  size_t I = size_t(double(Samples.size() - 1) * P + 0.5);
  std::nth_element(Samples.begin(), Samples.begin() + ptrdiff_t(I),
                   Samples.end());
  return Samples[I];
}

/// State-run-exact comparison: the serving equivalence contract.
bool sameRun(const DetectorRun &A, const DetectorRun &B) {
  const std::vector<StateRun> &RA = A.States.runs();
  const std::vector<StateRun> &RB = B.States.runs();
  if (A.States.size() != B.States.size() || RA.size() != RB.size())
    return false;
  for (size_t I = 0; I != RA.size(); ++I)
    if (RA[I].Begin != RB[I].Begin || RA[I].Length != RB[I].Length ||
        RA[I].State != RB[I].State)
      return false;
  return A.DetectedPhases == B.DetectedPhases &&
         A.AnchoredPhases == B.AnchoredPhases;
}

bool parseConfigFlags(const ArgParser &Args, DetectorConfig &C,
                      std::string &Error) {
  C.Window.CWSize = uint32_t(Args.getInt("cw", 1000));
  C.Window.TWSize = uint32_t(Args.getInt("tw", 1000));
  C.Window.SkipFactor = uint32_t(Args.getInt("skip", 100));
  C.AnalyzerParam = Args.getDouble("param", 0.5);

  const std::string &TP = Args.getOption("twpolicy");
  if (TP == "constant")
    C.Window.TWPolicy = TWPolicyKind::Constant;
  else if (TP == "adaptive")
    C.Window.TWPolicy = TWPolicyKind::Adaptive;
  else {
    Error = "unknown --twpolicy '" + TP + "' (constant|adaptive)";
    return false;
  }

  const std::string &M = Args.getOption("model");
  if (M == "unweighted")
    C.Model = ModelKind::UnweightedSet;
  else if (M == "weighted")
    C.Model = ModelKind::WeightedSet;
  else if (M == "bbv")
    C.Model = ModelKind::ManhattanBBV;
  else {
    Error = "unknown --model '" + M + "' (unweighted|weighted|bbv)";
    return false;
  }

  const std::string &A = Args.getOption("analyzer");
  if (A == "threshold")
    C.TheAnalyzer = AnalyzerKind::Threshold;
  else if (A == "average")
    C.TheAnalyzer = AnalyzerKind::Average;
  else if (A == "hysteresis")
    C.TheAnalyzer = AnalyzerKind::Hysteresis;
  else {
    Error = "unknown --analyzer '" + A + "' (threshold|average|hysteresis)";
    return false;
  }
  return true;
}

/// The whole load run's mutable state.
struct Harness {
  const Options &Opts;
  const std::vector<SiteIndex> &Elements;
  SiteIndex NumSites;
  uint16_t HelloFlags;

  std::vector<std::unique_ptr<LoadSession>> Active;
  size_t Launched = 0;
  size_t Completed = 0;
  size_t Failed = 0;
  size_t Drained = 0;
  size_t Mismatches = 0;
  uint64_t ServedElements = 0;

  std::vector<double> BatchUs;
  std::vector<double> SessionMs;
  const DetectorRun *Reference = nullptr;

  Harness(const Options &Opts, const std::vector<SiteIndex> &Elements,
          SiteIndex NumSites)
      : Opts(Opts), Elements(Elements), NumSites(NumSites),
        HelloFlags(uint16_t(HelloWantProgress |
                            (Opts.Verify ? HelloWantAnchors : 0))) {}

  bool launchOne(std::string &Error);
  bool prefixMatches(const StreamedRun &Run) const;
  void refillOut(LoadSession &S, Clock::time_point Now);
  bool flushOut(LoadSession &S, Clock::time_point Now);
  void finish(LoadSession &S, LoadSession::Phase Ph);
  void handleEvents(LoadSession &S, Clock::time_point Now);
  void handleRead(LoadSession &S, Clock::time_point Now);
  bool run(std::string &Error);
};

bool Harness::launchOne(std::string &Error) {
  auto S = std::make_unique<LoadSession>();
  S->Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (S->Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(S->Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opts.Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(S->Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
          0 &&
      errno != EINPROGRESS) {
    Error = std::string("connect: ") + std::strerror(errno);
    ::close(S->Fd);
    return false;
  }
  S->Start = Clock::now();
  HelloMsg Hello;
  Hello.Flags = HelloFlags;
  Hello.NumSites = NumSites;
  Hello.Config = Opts.Config;
  appendHello(S->OutBuf, Hello);
  Launched += 1;
  Active.push_back(std::move(S));
  return true;
}

void Harness::refillOut(LoadSession &S, Clock::time_point Now) {
  if (S.OutPos < S.OutBuf.size())
    return;
  if (S.PendingTarget) {
    S.InFlight.push_back({S.PendingTarget, Now});
    S.PendingTarget = 0;
  }
  S.OutBuf.clear();
  S.OutPos = 0;
  if (S.NextElem < Elements.size()) {
    size_t Take = std::min(Opts.Chunk, Elements.size() - S.NextElem);
    appendElements(S.OutBuf, Elements.data() + S.NextElem, Take);
    S.NextElem += Take;
    S.PendingTarget = S.NextElem;
  } else if (!S.FinishQueued) {
    appendFinish(S.OutBuf);
    S.FinishQueued = true;
  }
}

/// Writes queued bytes until EAGAIN or the stream is fully sent. Returns
/// false when the session died.
bool Harness::flushOut(LoadSession &S, Clock::time_point Now) {
  while (true) {
    refillOut(S, Now);
    if (S.OutPos >= S.OutBuf.size())
      return true; // Nothing left to send (for now or at all).
    ssize_t W = ::send(S.Fd, S.OutBuf.data() + S.OutPos,
                       S.OutBuf.size() - S.OutPos, MSG_NOSIGNAL);
    if (W > 0) {
      S.OutPos += size_t(W);
      continue;
    }
    if (W < 0 && errno == EINTR)
      continue;
    if (W < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;
    // A reset here usually means a server-side terminal Error; keep
    // reading so the Error event (if any) decides how the session ends.
    S.OutBuf.clear();
    S.OutPos = 0;
    S.NextElem = Elements.size();
    S.FinishQueued = true;
    return true;
  }
}

/// Drain-cut equivalence: a session cut mid-stream must have received a
/// clean prefix of the offline reference's transition sequence — the
/// server decides whole batches before cutting, never a partial or
/// reordered one.
bool Harness::prefixMatches(const StreamedRun &Run) const {
  const std::vector<StateRun> &Runs = Reference->States.runs();
  for (size_t J = 0; J != Run.Transitions.size(); ++J) {
    const TransitionMsg &T = Run.Transitions[J];
    if (J + 1 >= Runs.size() || T.Offset != Runs[J + 1].Begin ||
        T.NewState != Runs[J + 1].State)
      return false;
  }
  return true;
}

void Harness::finish(LoadSession &S, LoadSession::Phase Ph) {
  S.Ph = Ph;
  S.End = Clock::now();
  if (S.Fd != -1) {
    ::close(S.Fd);
    S.Fd = -1;
  }
  if (Ph == LoadSession::Phase::Done) {
    Completed += 1;
    ServedElements += S.Run.Summary.Elements;
    SessionMs.push_back(secondsBetween(S.Start, S.End) * 1e3);
    if (Opts.Verify && Reference) {
      DetectorRun Streamed = streamedToDetectorRun(S.Run);
      if (!sameRun(Streamed, *Reference))
        Mismatches += 1;
    }
  } else if (Ph == LoadSession::Phase::Drained) {
    Drained += 1;
    if (Opts.Verify && Reference && !prefixMatches(S.Run))
      Mismatches += 1;
  } else {
    Failed += 1;
  }
}

void Harness::handleEvents(LoadSession &S, Clock::time_point Now) {
  Frame F;
  while (S.Ph == LoadSession::Phase::Running) {
    FrameReader::Status St = S.Reader.next(F);
    if (St == FrameReader::Status::NeedMore)
      return;
    if (St == FrameReader::Status::Corrupt) {
      S.Error = "protocol corruption: " + S.Reader.corruptReason();
      finish(S, LoadSession::Phase::Failed);
      return;
    }
    switch (F.Kind) {
    case MsgKind::HelloAck:
      if (!parseHelloAck(F, S.Run.Ack)) {
        S.Error = "malformed HelloAck";
        finish(S, LoadSession::Phase::Failed);
      }
      break;
    case MsgKind::Transition: {
      TransitionMsg T;
      if (!parseTransition(F, T)) {
        S.Error = "malformed Transition";
        finish(S, LoadSession::Phase::Failed);
        break;
      }
      S.Run.Transitions.push_back(T);
      break;
    }
    case MsgKind::Progress: {
      ProgressMsg P;
      if (!parseProgress(F, P)) {
        S.Error = "malformed Progress";
        finish(S, LoadSession::Phase::Failed);
        break;
      }
      S.Run.LastProgress = P.Ingested;
      while (!S.InFlight.empty() && S.InFlight.front().first <= P.Ingested) {
        BatchUs.push_back(secondsBetween(S.InFlight.front().second, Now) *
                          1e6);
        S.InFlight.pop_front();
      }
      break;
    }
    case MsgKind::Finished:
      if (!parseFinished(F, S.Run.Summary)) {
        S.Error = "malformed Finished";
        finish(S, LoadSession::Phase::Failed);
        break;
      }
      S.Run.GotFinished = true;
      finish(S, LoadSession::Phase::Done);
      break;
    case MsgKind::Error: {
      S.Run.GotError = true;
      parseError(F, S.Run.Err);
      if (Opts.TolerateShutdown &&
          (S.Run.Err.Code == ServeError::Shutdown ||
           S.Run.Err.Code == ServeError::Evicted)) {
        finish(S, LoadSession::Phase::Drained);
        break;
      }
      S.Error = std::string("server error: ") +
                serveErrorName(S.Run.Err.Code) + ": " + S.Run.Err.Message;
      finish(S, LoadSession::Phase::Failed);
      break;
    }
    default:
      S.Error = "unexpected frame kind " + std::to_string(unsigned(F.Kind));
      finish(S, LoadSession::Phase::Failed);
      break;
    }
  }
}

void Harness::handleRead(LoadSession &S, Clock::time_point Now) {
  uint8_t Buf[64 << 10];
  while (S.Ph == LoadSession::Phase::Running) {
    ssize_t N = ::recv(S.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      S.Reader.feed(Buf, size_t(N));
      handleEvents(S, Now);
      if (size_t(N) < sizeof(Buf))
        return;
      continue;
    }
    if (N == 0) {
      // Under --tolerate-shutdown a close that races the drain's Error
      // frame is still a drain cut, not a failure.
      if (Opts.TolerateShutdown) {
        finish(S, LoadSession::Phase::Drained);
        return;
      }
      S.Error = "connection closed by server";
      finish(S, LoadSession::Phase::Failed);
      return;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    S.Error = std::string("recv: ") + std::strerror(errno);
    finish(S, LoadSession::Phase::Failed);
    return;
  }
}

bool Harness::run(std::string &Error) {
  while (Launched < std::min(Opts.Concurrent, Opts.Total))
    if (!launchOne(Error))
      return false;

  std::vector<pollfd> Pfds;
  while (!Active.empty()) {
    Pfds.clear();
    for (auto &S : Active) {
      short Ev = POLLIN;
      if (S->Ph == LoadSession::Phase::Connecting ||
          S->OutPos < S->OutBuf.size() || S->NextElem < Elements.size() ||
          !S->FinishQueued)
        Ev |= POLLOUT;
      Pfds.push_back({S->Fd, Ev, 0});
    }
    int NReady = ::poll(Pfds.data(), nfds_t(Pfds.size()), 10000);
    if (NReady < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("poll: ") + std::strerror(errno);
      return false;
    }
    Clock::time_point Now = Clock::now();
    for (size_t I = 0; I != Active.size(); ++I) {
      LoadSession &S = *Active[I];
      short Re = Pfds[I].revents;
      if (!Re)
        continue;
      if (S.Ph == LoadSession::Phase::Connecting) {
        if (Re & (POLLOUT | POLLERR | POLLHUP)) {
          int Err = 0;
          socklen_t Len = sizeof(Err);
          ::getsockopt(S.Fd, SOL_SOCKET, SO_ERROR, &Err, &Len);
          if (Err != 0) {
            S.Error = std::string("connect: ") + std::strerror(Err);
            finish(S, LoadSession::Phase::Failed);
            continue;
          }
          S.Ph = LoadSession::Phase::Running;
        }
      }
      if (S.Ph != LoadSession::Phase::Running)
        continue;
      if (Re & POLLIN)
        handleRead(S, Now);
      if (S.Ph == LoadSession::Phase::Running && (Re & POLLOUT))
        flushOut(S, Now);
      if (S.Ph == LoadSession::Phase::Running &&
          (Re & (POLLERR | POLLHUP)) && !(Re & POLLIN)) {
        if (Opts.TolerateShutdown) {
          finish(S, LoadSession::Phase::Drained);
          continue;
        }
        S.Error = "connection reset";
        finish(S, LoadSession::Phase::Failed);
      }
    }
    // Retire finished sessions and backfill to the concurrency target.
    for (size_t I = 0; I != Active.size();) {
      if (Active[I]->Ph != LoadSession::Phase::Connecting &&
          Active[I]->Ph != LoadSession::Phase::Running) {
        if (!Active[I]->Error.empty() && Failed <= 5)
          std::fprintf(stderr, "opd_loadgen: session failed: %s\n",
                       Active[I]->Error.c_str());
        Active.erase(Active.begin() + ptrdiff_t(I));
      } else {
        ++I;
      }
    }
    while (Active.size() < Opts.Concurrent && Launched < Opts.Total)
      if (!launchOne(Error))
        return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("opd_loadgen",
                 "Replays a bundled workload trace over many concurrent "
                 "sessions against opd_serve and reports latency "
                 "percentiles, served elements/sec, and (with --verify) "
                 "streamed-vs-offline equivalence.");
  Args.addOption("port", "server port (required)", "0");
  Args.addOption("sessions", "concurrent sessions", "8");
  Args.addOption("total", "total sessions to run (default: --sessions)", "0");
  Args.addOption("workload", "bundled workload name", "db");
  Args.addOption("scale", "workload scale factor", "1.0");
  Args.addOption("chunk", "elements per Elements frame", "4096");
  Args.addOption("cw", "current-window size", "1000");
  Args.addOption("tw", "trailing-window size", "1000");
  Args.addOption("skip", "skip factor (decision batch size)", "100");
  Args.addOption("twpolicy", "constant|adaptive", "constant");
  Args.addOption("model", "unweighted|weighted|bbv", "unweighted");
  Args.addOption("analyzer", "threshold|average|hysteresis", "threshold");
  Args.addOption("param", "analyzer parameter", "0.5");
  Args.addOption("offline-reps", "offline baseline repetitions", "3");
  Args.addFlag("verify", "check streamed output against offline runDetector");
  Args.addFlag("tolerate-shutdown",
               "treat drain/eviction cuts as drained, not failed; with "
               "--verify their transitions must prefix-match the offline "
               "reference");
  Args.addFlag("json", "emit one JSON result object on stdout");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 1;

  Options Opts;
  Opts.Port = uint16_t(Args.getInt("port", 0));
  if (Opts.Port == 0) {
    std::fprintf(stderr, "opd_loadgen: --port is required\n");
    return 1;
  }
  Opts.Concurrent = size_t(std::max(1L, Args.getInt("sessions", 8)));
  Opts.Total = size_t(Args.getInt("total", 0));
  if (Opts.Total == 0)
    Opts.Total = Opts.Concurrent;
  Opts.WorkloadName = Args.getOption("workload");
  Opts.Scale = Args.getDouble("scale", 1.0);
  Opts.Chunk = size_t(std::max(1L, Args.getInt("chunk", 4096)));
  Opts.Verify = Args.getFlag("verify");
  Opts.TolerateShutdown = Args.getFlag("tolerate-shutdown");
  Opts.Json = Args.getFlag("json");
  Opts.OfflineReps = int(std::max(1L, Args.getInt("offline-reps", 3)));
  std::string Error;
  if (!parseConfigFlags(Args, Opts.Config, Error)) {
    std::fprintf(stderr, "opd_loadgen: %s\n", Error.c_str());
    return 1;
  }

  const Workload *W = findWorkload(Opts.WorkloadName);
  if (!W) {
    std::fprintf(stderr, "opd_loadgen: unknown workload '%s'\n",
                 Opts.WorkloadName.c_str());
    return 1;
  }
  ExecutionResult Exec = executeWorkload(*W, Opts.Scale);
  const BranchTrace &Trace = Exec.Branches;
  if (Trace.empty()) {
    std::fprintf(stderr, "opd_loadgen: workload produced an empty trace\n");
    return 1;
  }

  // Offline baseline: one fast-detector thread on the same trace — the
  // denominator of serving_vs_offline_ratio.
  std::unique_ptr<FastDetectorBase> Offline =
      makeFastDetector(Opts.Config, Trace.numSites());
  DetectorRun Reference;
  double OfflineEps = 0.0;
  for (int R = 0; R != Opts.OfflineReps; ++R) {
    Clock::time_point T0 = Clock::now();
    runDetector(*Offline, Trace, Reference);
    double Secs = secondsBetween(T0, Clock::now());
    if (Secs > 0)
      OfflineEps = std::max(OfflineEps, double(Trace.size()) / Secs);
  }

  Harness H(Opts, Trace.elements(), Trace.numSites());
  if (Opts.Verify)
    H.Reference = &Reference;

  Clock::time_point T0 = Clock::now();
  if (!H.run(Error)) {
    std::fprintf(stderr, "opd_loadgen: %s\n", Error.c_str());
    return 1;
  }
  double Seconds = secondsBetween(T0, Clock::now());
  double Eps = Seconds > 0 ? double(H.ServedElements) / Seconds : 0.0;
  double Ratio = OfflineEps > 0 ? Eps / OfflineEps : 0.0;

  double BatchP50 = percentile(H.BatchUs, 0.50);
  double BatchP95 = percentile(H.BatchUs, 0.95);
  double BatchP99 = percentile(H.BatchUs, 0.99);
  double SessP50 = percentile(H.SessionMs, 0.50);
  double SessP95 = percentile(H.SessionMs, 0.95);
  double SessP99 = percentile(H.SessionMs, 0.99);

  if (Opts.Json) {
    std::printf(
        "{\"workload\": \"%s\", \"sessions\": %zu, \"total_sessions\": %zu, "
        "\"completed\": %zu, \"failed\": %zu, \"drained\": %zu, "
        "\"elements\": %llu, "
        "\"seconds\": %.3f, \"eps\": %.0f, "
        "\"batch_us\": {\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f}, "
        "\"session_ms\": {\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f}, "
        "\"offline_eps\": %.0f, \"serving_vs_offline_ratio\": %.4f, "
        "\"verified\": %s, \"mismatches\": %zu}\n",
        Opts.WorkloadName.c_str(), Opts.Concurrent, Opts.Total, H.Completed,
        H.Failed, H.Drained, (unsigned long long)H.ServedElements, Seconds,
        Eps, BatchP50,
        BatchP95, BatchP99, SessP50, SessP95, SessP99, OfflineEps, Ratio,
        Opts.Verify ? "true" : "false", H.Mismatches);
  } else {
    std::printf("workload %s: %zu/%zu sessions completed, %zu failed, "
                "%zu drained\n",
                Opts.WorkloadName.c_str(), H.Completed, Opts.Total, H.Failed,
                H.Drained);
    std::printf("served %llu elements in %.3f s (%.0f elements/s)\n",
                (unsigned long long)H.ServedElements, Seconds, Eps);
    std::printf("batch ack latency us: p50 %.1f  p95 %.1f  p99 %.1f\n",
                BatchP50, BatchP95, BatchP99);
    std::printf("session latency ms:   p50 %.1f  p95 %.1f  p99 %.1f\n",
                SessP50, SessP95, SessP99);
    std::printf("offline baseline %.0f elements/s; serving/offline %.4f\n",
                OfflineEps, Ratio);
    if (Opts.Verify)
      std::printf("verify: %zu mismatches over %zu completed + %zu drained "
                  "sessions\n",
                  H.Mismatches, H.Completed, H.Drained);
  }

  return (H.Failed == 0 && H.Mismatches == 0) ? 0 : 1;
}
