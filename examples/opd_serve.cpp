//===- examples/opd_serve.cpp - Phase-detection serving daemon --------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// The serving daemon: binds a PhaseServer on 127.0.0.1 and runs until
// SIGINT/SIGTERM, then drains gracefully (docs/SERVING.md). The first
// stdout line is "listening on port N" so harnesses binding port 0 can
// discover the ephemeral port.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/ArgParser.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

using namespace opd;

namespace {

std::atomic<bool> StopFlag{false};

void onSignal(int) { StopFlag.store(true, std::memory_order_release); }

void printStats(const ServerStats &S) {
  std::fprintf(stderr,
               "opd_serve: accepted=%llu completed=%llu evicted=%llu "
               "errors=%llu drained=%llu elements=%llu transitions=%llu "
               "in=%llu out=%llu cache[hit=%llu miss=%llu]\n",
               (unsigned long long)S.Accepted, (unsigned long long)S.Completed,
               (unsigned long long)S.Evicted,
               (unsigned long long)S.ProtocolErrors,
               (unsigned long long)S.DrainClosed,
               (unsigned long long)S.Elements,
               (unsigned long long)S.Transitions, (unsigned long long)S.BytesIn,
               (unsigned long long)S.BytesOut, (unsigned long long)S.Cache.Hits,
               (unsigned long long)S.Cache.Misses);
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("opd_serve",
                 "Phase-detection-as-a-service daemon: accepts concurrent "
                 "client sessions on 127.0.0.1 and streams P/T transitions "
                 "(protocol spec in docs/SERVING.md).");
  Args.addOption("port", "TCP port to bind (0 picks an ephemeral port)", "0");
  Args.addOption("shards", "detector worker threads (0 = auto)", "0");
  Args.addOption("max-sessions", "concurrent session cap", "8192");
  Args.addOption("idle-timeout",
                 "seconds of silence before eviction (0 disables)", "60");
  Args.addOption("drain-timeout", "graceful-shutdown flush budget, seconds",
                 "10");
  Args.addOption("stats-interval",
                 "seconds between stats lines on stderr (0 disables)", "0");
  Args.addOption("max-pending",
                 "per-session ingress watermark in buffered elements "
                 "(0 = default; tiny values force backpressure)",
                 "0");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 1;

  ServerOptions Opts;
  Opts.Port = uint16_t(Args.getInt("port", 0));
  Opts.Shards = unsigned(Args.getInt("shards", 0));
  Opts.MaxSessions = size_t(Args.getInt("max-sessions", 8192));
  Opts.IdleTimeoutSeconds = Args.getDouble("idle-timeout", 60.0);
  Opts.DrainTimeoutSeconds = Args.getDouble("drain-timeout", 10.0);
  if (long MaxPending = Args.getInt("max-pending", 0))
    Opts.Limits.MaxPendingElements = size_t(MaxPending);

  PhaseServer Server(Opts);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "opd_serve: %s\n", Error.c_str());
    return 1;
  }
  std::printf("listening on port %u\n", unsigned(Server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  double StatsEvery = Args.getDouble("stats-interval", 0.0);
  auto LastStats = std::chrono::steady_clock::now();
  while (!StopFlag.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (StatsEvery > 0) {
      auto Now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(Now - LastStats).count() >=
          StatsEvery) {
        printStats(Server.stats());
        LastStats = Now;
      }
    }
  }

  std::fprintf(stderr, "opd_serve: draining\n");
  Server.stop();
  printStats(Server.stats());
  return 0;
}
