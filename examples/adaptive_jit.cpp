//===- examples/adaptive_jit.cpp - Phase-guided optimization client -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating client: a dynamic optimization system that
/// "performs specializing optimizations when the behavior is stable and
/// reconsiders optimization decisions when the behavior changes". This
/// example simulates such a VM:
///
///  * Executing a branch in generic (baseline-compiled) code costs 1.0.
///  * A specialized version costs 0.7 per branch while the behavior that
///    it was specialized for persists, but 1.25 once the phase changes
///    (mis-specialized code is slower than generic code).
///  * Specializing costs a one-time 2,000 units (recompilation), so the
///    break-even phase length is ~6.7K branches — which is why a client
///    needs phases of a minimum length (the MPL; we use 10K).
///
/// The simulation drives the specialization decision from an online
/// phase detector and compares several detectors (plus oracle and
/// never-specialize policies) on a real workload. A more accurate
/// detector converts directly into a lower total cost.
///
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"
#include "core/DetectorConfig.h"
#include "core/RecurringPhases.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <memory>

using namespace opd;

namespace {

struct CostModel {
  double GenericCost = 1.0;
  double SpecializedCost = 0.7;
  double MisSpecializedCost = 1.25;
  double RecompileCost = 2000.0;
};

/// Replays the trace, driving specialization from a state stream: the VM
/// specializes when the stream enters P and deoptimizes (back to generic)
/// when it enters T. While specialized, cost depends on whether the
/// *oracle* still considers execution inside the same phase the
/// specialization was built for.
double simulate(const StateSequence &Decisions,
                const BaselineSolution &Oracle, const CostModel &Model) {
  double Cost = 0.0;
  bool Specialized = false;
  // The oracle phase the current specialization targets, as an index into
  // Oracle.phases(); -1 when specialized during oracle-transition code.
  ptrdiff_t SpecializedPhase = -2;

  const std::vector<PhaseInterval> &Phases = Oracle.phases();
  size_t PhaseCursor = 0;
  uint64_t Total = Oracle.totalElements();
  assert(Decisions.size() == Total && "decision stream must cover trace");

  for (uint64_t I = 0; I != Total; ++I) {
    // Advance the oracle cursor: which phase (if any) covers element I?
    while (PhaseCursor < Phases.size() && Phases[PhaseCursor].End <= I)
      ++PhaseCursor;
    bool InOraclePhase =
        PhaseCursor < Phases.size() && Phases[PhaseCursor].Begin <= I;
    ptrdiff_t CurrentPhase =
        InOraclePhase ? static_cast<ptrdiff_t>(PhaseCursor) : -1;

    PhaseState Decision = Decisions.at(I);
    if (Decision == PhaseState::InPhase && !Specialized) {
      Specialized = true;
      SpecializedPhase = CurrentPhase;
      Cost += Model.RecompileCost;
    } else if (Decision == PhaseState::Transition && Specialized) {
      Specialized = false;
    }

    if (!Specialized)
      Cost += Model.GenericCost;
    else if (CurrentPhase == SpecializedPhase && CurrentPhase >= 0)
      Cost += Model.SpecializedCost;
    else
      Cost += Model.MisSpecializedCost;
  }
  return Cost;
}

/// Like simulate(), but with a specialization cache built on the
/// recurring-phase machinery (the paper's future-work direction): on
/// entering a phase the VM probes its first ProbeLength elements, builds
/// a prefix signature, and reuses a cached specialization when the phase
/// recurs — paying the recompile cost only for phases it has never seen.
double simulateWithReuse(const DetectorConfig &Config,
                         const BranchTrace &Trace,
                         const BaselineSolution &Oracle,
                         const CostModel &Model) {
  constexpr uint64_t ProbeLength = 1000;
  std::unique_ptr<PhaseDetector> D = makeDetector(Config, Trace.numSites());
  PhaseLibrary Cache(/*MatchThreshold=*/0.7);
  PhaseSignature Probe(Trace.numSites());

  const std::vector<PhaseInterval> &Phases = Oracle.phases();
  size_t PhaseCursor = 0;
  double Cost = 0.0;
  bool InPhase = false, Specialized = false, Probing = false;
  ptrdiff_t SpecializedPhase = -2;

  const std::vector<SiteIndex> &Elements = Trace.elements();
  for (uint64_t I = 0; I != Elements.size(); ++I) {
    PhaseState S = D->processBatch(&Elements[I], 1);
    while (PhaseCursor < Phases.size() && Phases[PhaseCursor].End <= I)
      ++PhaseCursor;
    bool InOraclePhase =
        PhaseCursor < Phases.size() && Phases[PhaseCursor].Begin <= I;
    ptrdiff_t CurrentPhase =
        InOraclePhase ? static_cast<ptrdiff_t>(PhaseCursor) : -1;

    if (S == PhaseState::InPhase) {
      if (!InPhase) { // phase entry: start probing
        InPhase = true;
        Probing = true;
        Probe.clear();
      }
      if (Probing) {
        Probe.addElement(Elements[I]);
        if (Probe.total() >= ProbeLength) {
          Probing = false;
          PhaseLibrary::Classification C = Cache.classify(Probe);
          if (!C.Recurrence)
            Cost += Model.RecompileCost; // new phase: compile and cache
          Specialized = true;
          SpecializedPhase = CurrentPhase;
        }
      }
    } else if (InPhase) { // phase exit: deoptimize
      InPhase = false;
      Probing = false;
      Specialized = false;
    }

    if (!Specialized)
      Cost += Model.GenericCost;
    else if (CurrentPhase == SpecializedPhase && CurrentPhase >= 0)
      Cost += Model.SpecializedCost;
    else
      Cost += Model.MisSpecializedCost;
  }
  return Cost;
}

StateSequence runDetectorStates(const DetectorConfig &Config,
                                const BranchTrace &Trace) {
  std::unique_ptr<PhaseDetector> D = makeDetector(Config, Trace.numSites());
  StateSequence States;
  const std::vector<SiteIndex> &Elements = Trace.elements();
  size_t Batch = D->batchSize();
  for (uint64_t Offset = 0; Offset < Elements.size(); Offset += Batch) {
    size_t N = std::min<size_t>(Batch, Elements.size() - Offset);
    States.append(D->processBatch(&Elements[Offset], N), N);
  }
  return States;
}

} // namespace

int main() {
  const Workload *W = findWorkload("jess");
  if (!W)
    return 1;
  std::printf("executing workload '%s'...\n", W->Name.c_str());
  ExecutionResult Exec = executeWorkload(*W, 0.5);

  // The client needs phases long enough to amortize recompilation:
  // 2,000 / (1.0 - 0.7) ~ 6.7K break-even, so the client asks the oracle
  // for MPL = 10K phases and uses them as ground truth for
  // specialization validity.
  std::vector<BaselineSolution> Baselines =
      computeBaselines(Exec.CallLoop, Exec.Branches.size(), {10000});
  const BaselineSolution &Oracle = Baselines.front();
  std::printf("trace: %s branches; oracle: %zu phases, %s%% in phase\n\n",
              formatCount(Exec.Branches.size()).c_str(),
              Oracle.numPhases(),
              formatPercent(Oracle.fractionInPhase()).c_str());

  CostModel Model;
  Table T("Phase-guided specialization: total execution cost by policy");
  T.setHeader({"Policy", "Total cost", "vs generic"});
  double GenericCost =
      Model.GenericCost * static_cast<double>(Exec.Branches.size());

  auto addRow = [&](const std::string &Name, double Cost) {
    T.addRow({Name, formatCount(static_cast<uint64_t>(Cost)),
              formatPercent(Cost / GenericCost - 1.0) + "%"});
  };

  addRow("never specialize (generic)", GenericCost);

  // Oracle-driven: the unattainable ideal.
  addRow("oracle detector", simulate(Oracle.states(), Oracle, Model));

  // A good framework detector: unweighted, adaptive TW, skip 1.
  DetectorConfig Good;
  Good.Window.CWSize = 5000;
  Good.Window.TWSize = 5000;
  Good.Window.TWPolicy = TWPolicyKind::Adaptive;
  Good.Model = ModelKind::UnweightedSet;
  Good.TheAnalyzer = AnalyzerKind::Threshold;
  Good.AnalyzerParam = 0.6;
  addRow("adaptive TW, skip=1",
         simulate(runDetectorStates(Good, Exec.Branches), Oracle, Model));

  // The same detector plus a specialization cache keyed on recurring
  // phases (the paper's future-work extension).
  addRow("adaptive TW + phase reuse cache",
         simulateWithReuse(Good, Exec.Branches, Oracle, Model));

  // The extant approach: fixed intervals (skip = CW size).
  DetectorConfig Fixed = Good;
  Fixed.Window.TWPolicy = TWPolicyKind::Constant;
  Fixed.Window.SkipFactor = Fixed.Window.CWSize;
  addRow("fixed intervals (skip=CW)",
         simulate(runDetectorStates(Fixed, Exec.Branches), Oracle, Model));

  // A naive client that specializes immediately and never backs off.
  StateSequence AlwaysP = StateSequence::fromPhases(
      {{0, Exec.Branches.size()}}, Exec.Branches.size());
  addRow("always specialized", simulate(AlwaysP, Oracle, Model));

  std::fputs(T.render().c_str(), stdout);
  std::printf("\nA more accurate online detector translates directly into "
              "lower execution cost.\n");
  return 0;
}
