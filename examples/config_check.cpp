//===- examples/config_check.cpp - Sweep-spec static linter -------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lints detector sweep specifications against the config-space
/// diagnostic catalogue (analysis/ConfigAnalysis.h): empty or duplicate
/// dimensions, degenerate analyzers (always-P / always-T / no-exit
/// hysteresis), windows or skips a trace can never fill, and
/// Fixed-Interval points that duplicate enumerated ones. Optionally
/// (--plan) prints the equivalence-class pruning plan the sweep harness
/// would use.
///
///   config_check --preset table2
///   config_check --preset paper --plan
///   config_check --cw 500 --analyzers t1.5,a0.05 --trace-len 100K --json
///
/// Exit codes follow jp_lint: 0 clean (or notes only), 1 warnings,
/// 2 errors.
///
//===----------------------------------------------------------------------===//

#include "ToolCommon.h"
#include "analysis/ConfigAnalysis.h"
#include "analysis/Lint.h"
#include "support/ArgParser.h"

#include <cstdio>
#include <string>

using namespace opd;

int main(int Argc, char **Argv) {
  ArgParser Args("config_check",
                 "Statically analyze a detector sweep specification.");
  addSweepSpecOptions(Args);
  Args.addOption("trace-len", "trace length for *-exceeds-trace checks "
                              "(0 disables; K/M suffix ok)",
                 "0");
  Args.addFlag("json", "emit structured JSON diagnostics");
  Args.addFlag("plan", "also print the equivalence-class pruning plan");
  Args.addFlag("anchored",
               "assume anchor-corrected starts are scored (keeps "
               "anchor-affecting merges out of the plan)");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 2;

  SweepSpec Spec;
  bool RawCrossProduct = false;
  if (!buildSweepSpec(Args, Spec, RawCrossProduct))
    return 2;

  std::string Preset = Args.getOption("preset");
  std::string SpecName = Preset.empty() ? "custom" : Preset;

  ConfigLintOptions Options;
  Options.TraceLen = parseSize(Args.getOption("trace-len"));

  DiagnosticEngine Diags;
  lintSweepSpec(Spec, Options, Diags);

  bool Json = Args.getFlag("json");
  if (Json) {
    std::fputs(renderDiagnosticsJSON(Diags, SpecName).c_str(), stdout);
  } else {
    for (const Diagnostic &D : Diags.diagnostics())
      std::printf("%s:%s\n", SpecName.c_str(), D.render().c_str());
    if (Diags.empty())
      std::printf("%s: clean\n", SpecName.c_str());
  }

  if (Args.getFlag("plan")) {
    SweepAnalysisOptions PlanOptions;
    PlanOptions.Canon.AnchoredScoring = Args.getFlag("anchored");
    PlanOptions.RawCrossProduct = RawCrossProduct;
    SweepAnalysis Analysis = analyzeSweep(Spec, PlanOptions);
    if (Json)
      std::fputs(renderSweepAnalysisJSON(Analysis, SpecName).c_str(),
                 stdout);
    else
      std::fputs(sweepPlanTable(Analysis).render().c_str(), stdout);
  }

  return exitCodeForSeverity(Diags.maxSeverity(), !Diags.empty());
}
