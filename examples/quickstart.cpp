//===- examples/quickstart.cpp - Minimal end-to-end example ------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build an online phase detector, stream a tiny synthetic
/// program's branch trace through it, and compare its answer against the
/// baseline oracle.
///
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"
#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"
#include "lang/Diagnostics.h"
#include "lang/Sema.h"
#include "metrics/Scoring.h"
#include "support/Format.h"
#include "vm/Interpreter.h"

#include <cstdio>

using namespace opd;

int main() {
  // 1. A tiny workload: three "phases" (stable loops) separated by
  //    transition code.
  const char *Source =
      "program quickstart;\n"
      "method main() {\n"
      "  loop warm times 800 { branch w0; branch w1 flip 0.9; }\n"
      "  branch t0; branch t1; branch t2;\n"
      "  loop work times 1500 { branch a0; branch a1; branch a2 flip 0.8; }\n"
      "  branch t3; branch t4;\n"
      "  loop cool times 900 { branch c0; branch c1; }\n"
      "}\n";

  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = compileProgram(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "compile error:\n%s", Diags.renderAll().c_str());
    return 1;
  }

  // 2. Execute it; the interpreter produces the branch trace (detector
  //    input) and the call-loop trace (oracle input).
  ExecutionResult Exec = runProgram(*Prog, {/*Seed=*/7});
  std::printf("trace: %s dynamic branches, %u distinct sites\n",
              formatCount(Exec.Branches.size()).c_str(),
              Exec.Branches.numSites());

  // 3. Configure an online detector: unweighted model, adaptive trailing
  //    window, CW of 250 elements, skip factor 1, threshold analyzer.
  DetectorConfig Config;
  Config.Window.CWSize = 250;
  Config.Window.TWSize = 250;
  Config.Window.SkipFactor = 1;
  Config.Window.TWPolicy = TWPolicyKind::Adaptive;
  Config.Model = ModelKind::UnweightedSet;
  Config.TheAnalyzer = AnalyzerKind::Threshold;
  Config.AnalyzerParam = 0.6;

  std::unique_ptr<PhaseDetector> Detector =
      makeDetector(Config, Exec.Branches.numSites());
  std::printf("detector: %s\n", Detector->describe().c_str());

  // 4. Stream the trace through the detector.
  DetectorRun Run = runDetector(*Detector, Exec.Branches);
  std::printf("detected %zu phases:\n", Run.DetectedPhases.size());
  for (const PhaseInterval &P : Run.DetectedPhases)
    std::printf("  [%s, %s)\n", formatCount(P.Begin).c_str(),
                formatCount(P.End).c_str());

  // 5. Ask the oracle for the "true" phases at MPL=1000 and score the
  //    detector against it.
  std::vector<BaselineSolution> Baselines =
      computeBaselines(Exec.CallLoop, Exec.Branches.size(), {1000});
  const BaselineSolution &Oracle = Baselines.front();
  std::printf("oracle (MPL=1K) found %zu phases covering %s%% of the "
              "trace\n",
              Oracle.numPhases(),
              formatPercent(Oracle.fractionInPhase()).c_str());

  AccuracyScore Score = scoreDetection(Run.States, Oracle.states());
  std::printf("correlation=%.3f sensitivity=%.3f falsePositives=%.3f -> "
              "score=%.3f\n",
              Score.Correlation, Score.Sensitivity, Score.FalsePositives,
              Score.Score);
  return 0;
}
