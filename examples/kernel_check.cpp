//===- examples/kernel_check.cpp - Kernel value-range certifier CLI -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Certifies the kernel arithmetic of every configuration a sweep
/// specification enumerates (analysis/KernelBounds.h): no unsigned
/// wraparound in any count, product, or accumulator; minimal bit-widths
/// per quantity (the SIMD lane plan, --lane-plan); and where the
/// division-free threshold decision is exact versus needing its
/// fallback. Optional trace statistics (--trace-len,
/// --max-multiplicity, --num-sites) tighten the intervals; without a
/// trace length an adaptive TW is unbounded and certification is
/// refused with kernel-unbounded-tw.
///
///   kernel_check --preset paper --trace-len 62M
///   kernel_check --preset table2 --trace-len 62M --lane-plan
///   kernel_check --cw 4000000000 --models weighted --policies adaptive
///       --trace-len 8000M --json
///
/// The --lane-plan report always covers all NumFastShapes monomorphic
/// fast-path instantiations: shapes the spec does not enumerate are
/// synthesized from the spec's dimension maxima (flagged with 0
/// enumerated configs), so the report is the complete admission table
/// for the SIMD layer.
///
/// Exit codes follow jp_lint: 0 clean (or notes only), 1 warnings,
/// 2 errors.
///
//===----------------------------------------------------------------------===//

#include "ToolCommon.h"
#include "analysis/KernelBounds.h"
#include "analysis/Lint.h"
#include "support/ArgParser.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <vector>

using namespace opd;

namespace {

/// Decomposes a fastShapeIndex back into its (model, policy, analyzer)
/// coordinates — the inverse of fastShapeIndex()'s mixed-radix encoding.
void shapeCoords(size_t Shape, ModelKind &Model, TWPolicyKind &Policy,
                 AnalyzerKind &Analyzer) {
  Analyzer = static_cast<AnalyzerKind>(Shape % 3);
  Policy = static_cast<TWPolicyKind>((Shape / 3) % 2);
  Model = static_cast<ModelKind>(Shape / 6);
}

/// Builds a worst-case config for a shape the spec never enumerates:
/// the spec's largest CW and TW factor with the shape's own model,
/// policy, and analyzer (first matching analyzer parameter, or the
/// repo default for the kind). Bounds depend only on these dimensions,
/// so the synthesized certificate is the sound worst case of running
/// this shape at the spec's scale.
DetectorConfig synthesizeShapeConfig(size_t Shape, const SweepSpec &Spec) {
  ModelKind Model;
  TWPolicyKind Policy;
  AnalyzerKind Analyzer;
  shapeCoords(Shape, Model, Policy, Analyzer);

  DetectorConfig C;
  C.Model = Model;
  C.Window.TWPolicy = Policy;
  uint32_t CW = 1000;
  if (!Spec.CWSizes.empty())
    CW = *std::max_element(Spec.CWSizes.begin(), Spec.CWSizes.end());
  uint32_t Factor = 1;
  if (!Spec.TWFactors.empty())
    Factor =
        *std::max_element(Spec.TWFactors.begin(), Spec.TWFactors.end());
  uint64_t TW = static_cast<uint64_t>(CW) * Factor;
  C.Window.CWSize = CW;
  C.Window.TWSize = static_cast<uint32_t>(
      std::min<uint64_t>(TW, std::numeric_limits<uint32_t>::max()));
  C.TheAnalyzer = Analyzer;
  C.AnalyzerParam = Analyzer == AnalyzerKind::Threshold  ? 0.5
                    : Analyzer == AnalyzerKind::Average ? 0.05
                                                        : 0.6;
  for (const AnalyzerSpec &A : Spec.Analyzers)
    if (A.Kind == Analyzer) {
      C.AnalyzerParam = A.Param;
      break;
    }
  return C;
}

/// "weighted/adaptive/threshold"-style shape label.
std::string shapeName(size_t Shape) {
  ModelKind Model;
  TWPolicyKind Policy;
  AnalyzerKind Analyzer;
  shapeCoords(Shape, Model, Policy, Analyzer);
  return std::string(modelKindName(Model)) + "/" + twPolicyName(Policy) +
         "/" + analyzerKindName(Analyzer);
}

/// Largest certified bit-width over \p Cert's applicable quantities,
/// split by storage class; 0 stands for "unbounded".
unsigned maxBits(const KernelCertificate &Cert, bool Counts) {
  unsigned Bits = 0;
  bool AllBounded = true;
  for (const QuantityBound &B : Cert.Bounds) {
    if (!B.Applicable)
      continue;
    bool IsCount = B.Quantity == KernelQuantity::CWCount ||
                   B.Quantity == KernelQuantity::TWCount;
    if (IsCount != Counts)
      continue;
    if (!B.Bounded)
      AllBounded = false;
    Bits = std::max(Bits, B.Bits);
  }
  return AllBounded ? Bits : 0;
}

std::string laneCell(unsigned Bits, unsigned Lane) {
  if (Lane == 0)
    return "-";
  return std::to_string(Bits) + "b -> u" + std::to_string(Lane);
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("kernel_check",
                 "Certify kernel value ranges for a detector sweep.");
  addSweepSpecOptions(Args);
  Args.addOption("trace-len", "trace length bounding adaptive-TW growth "
                              "and site multiplicity (0 = unknown; K/M "
                              "suffix ok)",
                 "0");
  Args.addOption("max-multiplicity",
                 "maximum occurrences of any one site (0 = unknown)", "0");
  Args.addOption("num-sites", "number of distinct sites (0 = unknown)",
                 "0");
  Args.addFlag("json", "emit structured JSON diagnostics and certificates");
  Args.addFlag("lane-plan",
               "print the per-shape SIMD lane-width admission table");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 2;

  SweepSpec Spec;
  bool RawCrossProduct = false;
  if (!buildSweepSpec(Args, Spec, RawCrossProduct))
    return 2;

  std::string Preset = Args.getOption("preset");
  std::string SpecName = Preset.empty() ? "custom" : Preset;

  TraceBounds Stats;
  Stats.TraceLen = parseSize(Args.getOption("trace-len"));
  Stats.MaxMultiplicity = parseSize(Args.getOption("max-multiplicity"));
  Stats.NumSites =
      static_cast<SiteIndex>(parseSize(Args.getOption("num-sites")));

  std::vector<DetectorConfig> Configs = RawCrossProduct
                                            ? enumerateCrossProduct(Spec)
                                            : enumerateConfigs(Spec);

  // One certificate per monomorphic fast-path shape, widened over every
  // enumerated config of that shape; diagnostics come from the merged
  // certificates, so each shape reports its worst case once instead of
  // once per sweep point.
  std::vector<std::optional<KernelCertificate>> Merged(NumFastShapes);
  std::vector<size_t> Enumerated(NumFastShapes, 0);
  for (const DetectorConfig &C : Configs) {
    KernelCertificate Cert = certifyKernel(C, Stats);
    ++Enumerated[Cert.Shape];
    if (!Merged[Cert.Shape]) {
      Merged[Cert.Shape] = Cert;
      continue;
    }
    mergeCertificate(*Merged[Cert.Shape], Cert);
    // Keep the offender visible: diagnostics cite the merged
    // certificate's Config, so hold on to the widest config seen.
    if (!Cert.NoWraparound ||
        Cert.ProductLaneBits > Merged[Cert.Shape]->ProductLaneBits)
      Merged[Cert.Shape]->Config = C;
  }
  for (size_t S = 0; S != NumFastShapes; ++S)
    if (!Merged[S])
      Merged[S] = certifyKernel(synthesizeShapeConfig(S, Spec), Stats);

  DiagnosticEngine Diags;
  for (size_t S = 0; S != NumFastShapes; ++S)
    if (Enumerated[S] != 0)
      lintCertificate(*Merged[S], Diags);

  bool Json = Args.getFlag("json");
  if (Json) {
    std::fputs(renderDiagnosticsJSON(Diags, SpecName).c_str(), stdout);
  } else {
    for (const Diagnostic &D : Diags.diagnostics())
      std::printf("%s:%s\n", SpecName.c_str(), D.render().c_str());
    if (Diags.empty())
      std::printf("%s: clean (%zu configs, %zu shapes certified)\n",
                  SpecName.c_str(), Configs.size(),
                  static_cast<size_t>(NumFastShapes));
  }

  if (Args.getFlag("lane-plan")) {
    if (Json) {
      std::string Out = "{\n  \"spec\": \"" + SpecName + "\",\n";
      Out += "  \"shapes\": [\n  ";
      for (size_t S = 0; S != NumFastShapes; ++S) {
        if (S)
          Out += ",\n  ";
        Out += renderCertificateJSON(*Merged[S]);
      }
      Out += "\n  ]\n}\n";
      std::fputs(Out.c_str(), stdout);
    } else {
      Table T("Kernel lane plan: " + SpecName);
      T.setHeader({"shape", "configs", "counts", "wide", "wraparound",
                   "batch", "threshold"});
      for (size_t S = 0; S != NumFastShapes; ++S) {
        const KernelCertificate &Cert = *Merged[S];
        T.addRow(
            {shapeName(S),
             Enumerated[S] ? std::to_string(Enumerated[S]) : "0 (synth)",
             laneCell(maxBits(Cert, true), Cert.CountLaneBits),
             laneCell(maxBits(Cert, false), Cert.ProductLaneBits),
             Cert.NoWraparound ? "none" : "POSSIBLE",
             admitsBatchLanes(Cert) ? "admit" : "refuse",
             thresholdExactnessName(Cert.Exactness)});
      }
      std::fputs(T.render().c_str(), stdout);
    }
  }

  return exitCodeForSeverity(Diags.maxSeverity(), !Diags.empty());
}
