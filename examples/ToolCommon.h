//===- examples/ToolCommon.h - Shared sweep-tool plumbing -------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flag parsing shared by sweep_tool and config_check: both build a
/// SweepSpec from the same --cw/--models/--analyzers/... vocabulary or
/// from a --preset name, so a spec linted by config_check is exactly the
/// spec sweep_tool runs.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_EXAMPLES_TOOLCOMMON_H
#define OPD_EXAMPLES_TOOLCOMMON_H

#include "core/SweepSpec.h"
#include "support/ArgParser.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace opd {

/// Splits a comma-separated list.
inline std::vector<std::string> splitList(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t Comma = Text.find(',', Start);
    if (Comma == std::string::npos) {
      if (Start < Text.size())
        Out.push_back(Text.substr(Start));
      break;
    }
    if (Comma > Start)
      Out.push_back(Text.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

/// Parses "10K" / "2500" style sizes.
inline uint64_t parseSize(const std::string &Text) {
  char *End = nullptr;
  uint64_t Value = std::strtoull(Text.c_str(), &End, 10);
  if (End && (*End == 'K' || *End == 'k'))
    Value *= 1000;
  if (End && (*End == 'M' || *End == 'm'))
    Value *= 1000000;
  return Value;
}

/// Registers the sweep-dimension options shared by sweep_tool and
/// config_check.
inline void addSweepSpecOptions(ArgParser &Args) {
  Args.addOption("preset",
                 "named spec: paper (full cross product), table2, fig4, "
                 "fig5, fig6, fig7, fig8, ablation13; overrides the "
                 "dimension flags",
                 "");
  Args.addOption("cw", "comma-separated CW sizes", "500,5000,50000");
  Args.addOption("tw-factors", "comma-separated TW-size factors (TW = CW "
                               "* factor)",
                 "1");
  Args.addOption("skips", "comma-separated skip factors", "1");
  Args.addOption("models",
                 "models: unweighted,weighted,manhattan", "unweighted");
  Args.addOption("analyzers",
                 "analyzers: t<threshold>, a<delta>, h<enter>",
                 "t0.6,a0.05");
  Args.addOption("policies", "policies: constant,adaptive,fixed",
                 "constant,adaptive");
  Args.addOption("anchors", "anchor policies: rn,lnn", "rn");
  Args.addOption("resizes", "TW resize policies: slide,move", "slide");
}

/// Builds the SweepSpec the parsed options describe. \p RawCrossProduct
/// is set when the spec is meant for enumerateCrossProduct() (the
/// "paper" preset). Returns false after printing an error to stderr.
inline bool buildSweepSpec(const ArgParser &Args, SweepSpec &Spec,
                           bool &RawCrossProduct) {
  RawCrossProduct = false;

  std::string Preset = Args.getOption("preset");
  if (!Preset.empty()) {
    if (Preset == "paper") {
      Spec = paperCrossSpec();
      RawCrossProduct = true;
      return true;
    }
    const std::vector<std::string> &Names = benchSweepNames();
    if (std::find(Names.begin(), Names.end(), Preset) == Names.end()) {
      std::fprintf(stderr, "error: unknown preset '%s'\n", Preset.c_str());
      return false;
    }
    Spec = benchSweepSpec(Preset, paperAnalyzers());
    return true;
  }

  Spec = SweepSpec();
  Spec.CWSizes.clear();
  for (const std::string &CW : splitList(Args.getOption("cw")))
    Spec.CWSizes.push_back(static_cast<uint32_t>(parseSize(CW)));
  Spec.TWFactors.clear();
  for (const std::string &F : splitList(Args.getOption("tw-factors")))
    Spec.TWFactors.push_back(static_cast<uint32_t>(parseSize(F)));
  Spec.SkipFactors.clear();
  for (const std::string &S : splitList(Args.getOption("skips")))
    Spec.SkipFactors.push_back(static_cast<uint32_t>(parseSize(S)));

  Spec.Models.clear();
  for (const std::string &M : splitList(Args.getOption("models"))) {
    if (M == "unweighted")
      Spec.Models.push_back(ModelKind::UnweightedSet);
    else if (M == "weighted")
      Spec.Models.push_back(ModelKind::WeightedSet);
    else if (M == "manhattan")
      Spec.Models.push_back(ModelKind::ManhattanBBV);
    else {
      std::fprintf(stderr, "error: unknown model '%s'\n", M.c_str());
      return false;
    }
  }

  Spec.Analyzers.clear();
  for (const std::string &A : splitList(Args.getOption("analyzers"))) {
    if (A.size() < 2) {
      std::fprintf(stderr, "error: bad analyzer spec '%s'\n", A.c_str());
      return false;
    }
    double Param = std::strtod(A.c_str() + 1, nullptr);
    switch (A[0]) {
    case 't':
      Spec.Analyzers.push_back({AnalyzerKind::Threshold, Param});
      break;
    case 'a':
      Spec.Analyzers.push_back({AnalyzerKind::Average, Param});
      break;
    case 'h':
      Spec.Analyzers.push_back({AnalyzerKind::Hysteresis, Param});
      break;
    default:
      std::fprintf(stderr, "error: bad analyzer spec '%s'\n", A.c_str());
      return false;
    }
  }

  Spec.TWPolicies.clear();
  Spec.IncludeFixedInterval = false;
  for (const std::string &P : splitList(Args.getOption("policies"))) {
    if (P == "constant")
      Spec.TWPolicies.push_back(TWPolicyKind::Constant);
    else if (P == "adaptive")
      Spec.TWPolicies.push_back(TWPolicyKind::Adaptive);
    else if (P == "fixed")
      Spec.IncludeFixedInterval = true;
    else {
      std::fprintf(stderr, "error: unknown policy '%s'\n", P.c_str());
      return false;
    }
  }

  Spec.Anchors.clear();
  for (const std::string &A : splitList(Args.getOption("anchors"))) {
    if (A == "rn")
      Spec.Anchors.push_back(AnchorKind::RightmostNoisy);
    else if (A == "lnn")
      Spec.Anchors.push_back(AnchorKind::LeftmostNonNoisy);
    else {
      std::fprintf(stderr, "error: unknown anchor '%s'\n", A.c_str());
      return false;
    }
  }

  Spec.Resizes.clear();
  for (const std::string &R : splitList(Args.getOption("resizes"))) {
    if (R == "slide")
      Spec.Resizes.push_back(ResizeKind::Slide);
    else if (R == "move")
      Spec.Resizes.push_back(ResizeKind::Move);
    else {
      std::fprintf(stderr, "error: unknown resize '%s'\n", R.c_str());
      return false;
    }
  }

  return true;
}

} // namespace opd

#endif // OPD_EXAMPLES_TOOLCOMMON_H
