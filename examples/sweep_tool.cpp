//===- examples/sweep_tool.cpp - Custom sweep runner ---------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a user-specified detector sweep over chosen workloads and MPLs
/// and emits one CSV row per (workload, configuration, MPL) — the raw
/// material behind every table in the paper, exposed for custom
/// analysis.
///
///   sweep_tool --workloads jess,db --mpls 1K,10K --cw 500,5000
///              --models unweighted,weighted --analyzers t0.6,a0.05
///              --policies constant,adaptive,fixed > scores.csv
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Sweep.h"
#include "support/ArgParser.h"
#include "support/Format.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace opd;

namespace {

/// Splits a comma-separated list.
std::vector<std::string> splitList(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t Comma = Text.find(',', Start);
    if (Comma == std::string::npos) {
      if (Start < Text.size())
        Out.push_back(Text.substr(Start));
      break;
    }
    if (Comma > Start)
      Out.push_back(Text.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

/// Parses "10K" / "2500" style sizes.
uint64_t parseSize(const std::string &Text) {
  char *End = nullptr;
  uint64_t Value = std::strtoull(Text.c_str(), &End, 10);
  if (End && (*End == 'K' || *End == 'k'))
    Value *= 1000;
  if (End && (*End == 'M' || *End == 'm'))
    Value *= 1000000;
  return Value;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("sweep_tool",
                 "Run a custom detector sweep; emits CSV on stdout.");
  Args.addOption("workloads", "comma-separated workload names",
                 "jess,db,jlex");
  Args.addOption("mpls", "comma-separated MPL values", "1K,10K,100K");
  Args.addOption("cw", "comma-separated CW sizes", "500,5000,50000");
  Args.addOption("models",
                 "models: unweighted,weighted,manhattan", "unweighted");
  Args.addOption("analyzers",
                 "analyzers: t<threshold>, a<delta>, h<enter>",
                 "t0.6,a0.05");
  Args.addOption("policies", "policies: constant,adaptive,fixed",
                 "constant,adaptive");
  Args.addOption("scale", "workload scale factor", "1.0");
  Args.addFlag("anchored", "also score anchor-corrected starts");
  Args.addFlag("stats", "print per-configuration observability counters "
                        "and stage timings to stderr");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 1;

  // Assemble the sweep.
  SweepSpec Spec;
  for (const std::string &CW : splitList(Args.getOption("cw")))
    Spec.CWSizes.push_back(static_cast<uint32_t>(parseSize(CW)));

  Spec.Models.clear();
  for (const std::string &M : splitList(Args.getOption("models"))) {
    if (M == "unweighted")
      Spec.Models.push_back(ModelKind::UnweightedSet);
    else if (M == "weighted")
      Spec.Models.push_back(ModelKind::WeightedSet);
    else if (M == "manhattan")
      Spec.Models.push_back(ModelKind::ManhattanBBV);
    else {
      std::fprintf(stderr, "error: unknown model '%s'\n", M.c_str());
      return 1;
    }
  }

  Spec.Analyzers.clear();
  for (const std::string &A : splitList(Args.getOption("analyzers"))) {
    if (A.size() < 2) {
      std::fprintf(stderr, "error: bad analyzer spec '%s'\n", A.c_str());
      return 1;
    }
    double Param = std::strtod(A.c_str() + 1, nullptr);
    switch (A[0]) {
    case 't':
      Spec.Analyzers.push_back({AnalyzerKind::Threshold, Param});
      break;
    case 'a':
      Spec.Analyzers.push_back({AnalyzerKind::Average, Param});
      break;
    case 'h':
      Spec.Analyzers.push_back({AnalyzerKind::Hysteresis, Param});
      break;
    default:
      std::fprintf(stderr, "error: bad analyzer spec '%s'\n", A.c_str());
      return 1;
    }
  }

  Spec.TWPolicies.clear();
  Spec.IncludeFixedInterval = false;
  for (const std::string &P : splitList(Args.getOption("policies"))) {
    if (P == "constant")
      Spec.TWPolicies.push_back(TWPolicyKind::Constant);
    else if (P == "adaptive")
      Spec.TWPolicies.push_back(TWPolicyKind::Adaptive);
    else if (P == "fixed")
      Spec.IncludeFixedInterval = true;
    else {
      std::fprintf(stderr, "error: unknown policy '%s'\n", P.c_str());
      return 1;
    }
  }

  std::vector<uint64_t> MPLs;
  for (const std::string &M : splitList(Args.getOption("mpls")))
    MPLs.push_back(parseSize(M));

  std::vector<std::string> Names = splitList(Args.getOption("workloads"));
  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks(Names, MPLs, Args.getDouble("scale", 1.0));

  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  std::fprintf(stderr, "sweep_tool: %zu configs x %zu workloads x %zu "
                       "MPLs\n",
               Configs.size(), Benchmarks.size(), MPLs.size());

  SweepOptions RunOptions;
  RunOptions.ScoreAnchored = Args.getFlag("anchored");
  RunOptions.CollectStats = Args.getFlag("stats");

  std::printf("workload,mpl,model,policy,cw,tw,skip,anchor,resize,"
              "analyzer,param,correlation,sensitivity,falsePositives,"
              "score%s\n",
              RunOptions.ScoreAnchored ? ",anchoredScore" : "");
  for (const BenchmarkData &B : Benchmarks) {
    std::vector<RunScores> Runs =
        runSweep(B.Trace, B.Baselines, Configs, RunOptions);
    if (RunOptions.CollectStats)
      std::fputs(
          sweepStatsTable(Runs, "Sweep statistics: " + B.Name).render()
              .c_str(),
          stderr);
    for (const RunScores &R : Runs) {
      for (size_t I = 0; I != MPLs.size(); ++I) {
        const DetectorConfig &C = R.Config;
        const AccuracyScore &S = R.PerMPL[I];
        std::string Policy = C.isFixedInterval()
                                 ? "fixed"
                                 : twPolicyName(C.Window.TWPolicy);
        std::printf(
            "%s,%llu,%s,%s,%u,%u,%u,%s,%s,%s,%g,%.6f,%.6f,%.6f,%.6f",
            B.Name.c_str(), static_cast<unsigned long long>(MPLs[I]),
            modelKindName(C.Model), Policy.c_str(), C.Window.CWSize,
            C.Window.TWSize, C.Window.SkipFactor,
            anchorKindName(C.Window.Anchor),
            resizeKindName(C.Window.Resize),
            analyzerKindName(C.TheAnalyzer), C.AnalyzerParam,
            S.Correlation, S.Sensitivity, S.FalsePositives, S.Score);
        if (RunOptions.ScoreAnchored)
          std::printf(",%.6f", R.AnchoredPerMPL[I].Score);
        std::printf("\n");
      }
    }
  }
  return 0;
}
