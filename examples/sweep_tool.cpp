//===- examples/sweep_tool.cpp - Custom sweep runner ---------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a user-specified detector sweep over chosen workloads and MPLs
/// and emits one CSV row per (workload, configuration, MPL) — the raw
/// material behind every table in the paper, exposed for custom
/// analysis.
///
///   sweep_tool --workloads jess,db --mpls 1K,10K --cw 500,5000
///              --models unweighted,weighted --analyzers t0.6,a0.05
///              --policies constant,adaptive,fixed > scores.csv
///
/// The config-space static analyzer (analysis/ConfigAnalysis.h) is
/// surfaced two ways:
///
///   sweep_tool --preset paper --plan      # pruning plan + shared-scan
///                                         # group stats, no sweep
///   sweep_tool --prune ...                # run one config per provable
///                                         # equivalence class; scores
///                                         # are bit-identical, --stats
///                                         # shows the runs saved
///   sweep_tool --engine per-config ...    # bypass the shared-scan
///                                         # engine (the differential
///                                         # oracle; default: shared)
///
//===----------------------------------------------------------------------===//

#include "ToolCommon.h"
#include "analysis/ConfigAnalysis.h"
#include "harness/Experiment.h"
#include "harness/Sweep.h"
#include "support/ArgParser.h"
#include "support/Format.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace opd;

int main(int Argc, char **Argv) {
  ArgParser Args("sweep_tool",
                 "Run a custom detector sweep; emits CSV on stdout.");
  Args.addOption("workloads", "comma-separated workload names",
                 "jess,db,jlex");
  Args.addOption("mpls", "comma-separated MPL values", "1K,10K,100K");
  addSweepSpecOptions(Args);
  Args.addOption("scale", "workload scale factor", "1.0");
  Args.addFlag("anchored", "also score anchor-corrected starts");
  Args.addFlag("stats", "print per-configuration observability counters "
                        "and stage timings to stderr");
  Args.addFlag("plan", "print the equivalence-class pruning plan and "
                       "exit without sweeping");
  Args.addFlag("prune", "run one configuration per provable equivalence "
                        "class and fan scores out to the class");
  Args.addFlag("json", "with --plan, emit the plan as JSON");
  Args.addOption("engine",
                 "execution engine: 'shared' (one trace pass per "
                 "window-kernel shape, the default) or 'per-config' "
                 "(one pass per run; the differential oracle)",
                 "shared");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 1;

  SweepSpec Spec;
  bool RawCrossProduct = false;
  if (!buildSweepSpec(Args, Spec, RawCrossProduct))
    return 1;

  bool Anchored = Args.getFlag("anchored");

  if (Args.getFlag("plan")) {
    SweepAnalysisOptions PlanOptions;
    PlanOptions.Canon.AnchoredScoring = Anchored;
    PlanOptions.RawCrossProduct = RawCrossProduct;
    SweepAnalysis Analysis = analyzeSweep(Spec, PlanOptions);
    std::string Preset = Args.getOption("preset");
    if (Args.getFlag("json"))
      std::fputs(renderSweepAnalysisJSON(
                     Analysis, Preset.empty() ? "custom" : Preset)
                     .c_str(),
                 stdout);
    else
      std::fputs(sweepPlanTable(Analysis).render().c_str(), stdout);
    return 0;
  }

  std::vector<uint64_t> MPLs;
  for (const std::string &M : splitList(Args.getOption("mpls")))
    MPLs.push_back(parseSize(M));

  std::vector<std::string> Names = splitList(Args.getOption("workloads"));
  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks(Names, MPLs, Args.getDouble("scale", 1.0));

  std::vector<DetectorConfig> Configs = RawCrossProduct
                                            ? enumerateCrossProduct(Spec)
                                            : enumerateConfigs(Spec);
  std::fprintf(stderr, "sweep_tool: %zu configs x %zu workloads x %zu "
                       "MPLs\n",
               Configs.size(), Benchmarks.size(), MPLs.size());

  SweepOptions RunOptions;
  RunOptions.ScoreAnchored = Anchored;
  RunOptions.CollectStats = Args.getFlag("stats");
  RunOptions.Prune = Args.getFlag("prune");
  std::string Engine = Args.getOption("engine");
  if (Engine == "shared") {
    RunOptions.SharedScan = true;
  } else if (Engine == "per-config") {
    RunOptions.SharedScan = false;
  } else {
    std::fprintf(stderr,
                 "sweep_tool: unknown --engine '%s' (expected 'shared' "
                 "or 'per-config')\n",
                 Engine.c_str());
    return 1;
  }

  std::printf("workload,mpl,model,policy,cw,tw,skip,anchor,resize,"
              "analyzer,param,correlation,sensitivity,falsePositives,"
              "score%s\n",
              RunOptions.ScoreAnchored ? ",anchoredScore" : "");
  for (const BenchmarkData &B : Benchmarks) {
    SweepStats Stats;
    std::vector<RunScores> Runs =
        runSweep(B.Trace, B.Baselines, Configs, RunOptions, &Stats);
    if (RunOptions.CollectStats)
      std::fputs(
          sweepStatsTable(Runs, "Sweep statistics: " + B.Name).render()
              .c_str(),
          stderr);
    if (RunOptions.CollectStats || RunOptions.Prune)
      std::fprintf(stderr,
                   "sweep_tool: %s: %zu configs, %zu detector runs "
                   "executed, %zu pruned\n",
                   B.Name.c_str(), Stats.NumConfigs, Stats.RunsExecuted,
                   Stats.RunsPruned);
    for (const RunScores &R : Runs) {
      for (size_t I = 0; I != MPLs.size(); ++I) {
        const DetectorConfig &C = R.Config;
        const AccuracyScore &S = R.PerMPL[I];
        std::string Policy = C.isFixedInterval()
                                 ? "fixed"
                                 : twPolicyName(C.Window.TWPolicy);
        std::printf(
            "%s,%llu,%s,%s,%u,%u,%u,%s,%s,%s,%g,%.6f,%.6f,%.6f,%.6f",
            B.Name.c_str(), static_cast<unsigned long long>(MPLs[I]),
            modelKindName(C.Model), Policy.c_str(), C.Window.CWSize,
            C.Window.TWSize, C.Window.SkipFactor,
            anchorKindName(C.Window.Anchor),
            resizeKindName(C.Window.Resize),
            analyzerKindName(C.TheAnalyzer), C.AnalyzerParam,
            S.Correlation, S.Sensitivity, S.FalsePositives, S.Score);
        if (RunOptions.ScoreAnchored)
          std::printf(",%.6f", R.AnchoredPerMPL[I].Score);
        std::printf("\n");
      }
    }
  }
  return 0;
}
