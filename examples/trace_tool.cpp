//===- examples/trace_tool.cpp - Trace inspection and conversion --------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Utility for working with trace files — the interchange point between
/// this library and external instrumentation (a Pin/DynamoRIO tool or a
/// JVM agent can emit the text format and be analyzed here).
///
///   trace_tool generate --workload db --out db            # writes .branch/.callloop
///   trace_tool convert db.branch.bin db.branch.txt        # binary <-> text
///   trace_tool stats db.branch.bin                        # summary statistics
///   trace_tool dump-source --workload jess                # print the JP source
///
//===----------------------------------------------------------------------===//

#include "lang/Printer.h"
#include "support/ArgParser.h"
#include "support/Format.h"
#include "support/Table.h"
#include "trace/TraceIO.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace opd;

namespace {

bool hasSuffix(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

int cmdGenerate(const ArgParser &Args) {
  const std::string &Name = Args.getOption("workload");
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Name.c_str());
    return 1;
  }
  std::string Out = Args.getOption("out");
  if (Out.empty())
    Out = Name;
  ExecutionResult Exec = executeWorkload(*W, Args.getDouble("scale", 1.0));
  std::string BranchPath = Out + ".branch.bin";
  std::string CallLoopPath = Out + ".callloop.bin";
  if (IOStatus S = writeBranchTraceBinary(Exec.Branches, BranchPath); !S) {
    std::fprintf(stderr, "error: %s\n", S.Message.c_str());
    return 1;
  }
  if (IOStatus S = writeCallLoopTraceBinary(Exec.CallLoop, CallLoopPath);
      !S) {
    std::fprintf(stderr, "error: %s\n", S.Message.c_str());
    return 1;
  }
  std::printf("wrote %s (%s elements) and %s (%zu events)\n",
              BranchPath.c_str(), formatCount(Exec.Branches.size()).c_str(),
              CallLoopPath.c_str(), Exec.CallLoop.size());
  return 0;
}

int cmdDumpSource(const ArgParser &Args) {
  const std::string &Name = Args.getOption("workload");
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Name.c_str());
    return 1;
  }
  // Print the canonical (parsed and pretty-printed) form.
  std::unique_ptr<Program> Prog =
      compileWorkload(*W, Args.getDouble("scale", 1.0));
  std::fputs(printProgram(*Prog).c_str(), stdout);
  return 0;
}

int cmdConvert(const std::string &From, const std::string &To) {
  BranchTrace Trace;
  IOStatus S = hasSuffix(From, ".txt") ? readBranchTraceText(From, Trace)
                                       : readBranchTraceBinary(From, Trace);
  if (!S) {
    std::fprintf(stderr, "error: %s\n", S.Message.c_str());
    return 1;
  }
  S = hasSuffix(To, ".txt") ? writeBranchTraceText(Trace, To)
                            : writeBranchTraceBinary(Trace, To);
  if (!S) {
    std::fprintf(stderr, "error: %s\n", S.Message.c_str());
    return 1;
  }
  std::printf("converted %s -> %s (%s elements)\n", From.c_str(),
              To.c_str(), formatCount(Trace.size()).c_str());
  return 0;
}

int cmdStats(const std::string &Path) {
  BranchTrace Trace;
  IOStatus S = hasSuffix(Path, ".txt") ? readBranchTraceText(Path, Trace)
                                       : readBranchTraceBinary(Path, Trace);
  if (!S) {
    std::fprintf(stderr, "error: %s\n", S.Message.c_str());
    return 1;
  }
  // Per-site frequency distribution.
  std::vector<uint64_t> Counts(Trace.numSites(), 0);
  for (uint64_t I = 0; I != Trace.size(); ++I)
    ++Counts[Trace[I]];
  std::vector<std::pair<uint64_t, SiteIndex>> Ranked;
  for (SiteIndex Site = 0; Site != Trace.numSites(); ++Site)
    Ranked.push_back({Counts[Site], Site});
  std::sort(Ranked.rbegin(), Ranked.rend());

  std::printf("%s: %s elements, %u distinct sites\n", Path.c_str(),
              formatCount(Trace.size()).c_str(), Trace.numSites());
  Table T("Hottest branch sites");
  T.setHeader({"method", "offset", "taken", "count", "share"});
  for (size_t I = 0; I != std::min<size_t>(10, Ranked.size()); ++I) {
    ProfileElement E = Trace.sites().element(Ranked[I].second);
    T.addRow({std::to_string(E.methodId()),
              std::to_string(E.bytecodeOffset()), E.taken() ? "T" : "NT",
              formatCount(Ranked[I].first),
              formatPercent(static_cast<double>(Ranked[I].first) /
                            static_cast<double>(Trace.size())) +
                  "%"});
  }
  std::fputs(T.render().c_str(), stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("trace_tool",
                 "Generate, convert, and inspect OPD trace files.\n"
                 "commands (first positional): generate | convert <from> "
                 "<to> | stats <file> | dump-source");
  Args.addOption("workload", "workload for 'generate'", "db");
  Args.addOption("scale", "workload scale for 'generate'", "1.0");
  Args.addOption("out", "output basename for 'generate'", "");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 1;

  const std::vector<std::string> &Pos = Args.positional();
  if (Pos.empty()) {
    std::fputs(Args.usage().c_str(), stderr);
    return 1;
  }
  const std::string &Cmd = Pos[0];
  if (Cmd == "generate")
    return cmdGenerate(Args);
  if (Cmd == "dump-source")
    return cmdDumpSource(Args);
  if (Cmd == "convert" && Pos.size() == 3)
    return cmdConvert(Pos[1], Pos[2]);
  if (Cmd == "stats" && Pos.size() == 2)
    return cmdStats(Pos[1]);
  std::fprintf(stderr, "error: bad command line; try --help\n");
  return 1;
}
