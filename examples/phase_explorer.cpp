//===- examples/phase_explorer.cpp - Interactive phase inspection -------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI for exploring phase behavior: run a named workload (or compile a
/// .jp source file), print the oracle's phases for a chosen MPL, run a
/// configurable detector, render both as an ASCII timeline, and report
/// the accuracy score.
///
///   phase_explorer --workload jess --mpl 10K --cw 5000 --policy adaptive
///   phase_explorer myprogram.jp --mpl 1K --model weighted
///
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"
#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"
#include "lang/Diagnostics.h"
#include "lang/ProgramInfo.h"
#include "lang/Sema.h"
#include "metrics/Scoring.h"
#include "metrics/Timeline.h"
#include "support/ArgParser.h"
#include "support/Format.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace opd;

namespace {

/// Renders a state sequence as a fixed-width strip of '#' (in phase) and
/// '.' (transition), one character per Total/Width elements.
std::string renderTimeline(const StateSequence &States, unsigned Width) {
  if (States.empty())
    return std::string(Width, '.');
  std::string Out;
  Out.reserve(Width);
  uint64_t Total = States.size();
  for (unsigned I = 0; I != Width; ++I) {
    uint64_t Lo = Total * I / Width;
    uint64_t Hi = std::max<uint64_t>(Lo + 1, Total * (I + 1) / Width);
    // Sample the bucket: majority by midpoint (cheap and adequate).
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    Out.push_back(States.at(Mid) == PhaseState::InPhase ? '#' : '.');
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("phase_explorer",
                 "Explore oracle and detector phases on a workload.");
  Args.addOption("workload", "named workload (compress, jess, ...)", "jess");
  Args.addOption("scale", "workload scale factor", "0.5");
  Args.addOption("mpl", "oracle minimum phase length", "10K");
  Args.addOption("cw", "current window size", "5000");
  Args.addOption("tw", "trailing window size (default: = cw)", "");
  Args.addOption("skip", "skip factor", "1");
  Args.addOption("policy", "trailing window policy: constant|adaptive",
                 "adaptive");
  Args.addOption("model", "similarity model: unweighted|weighted",
                 "unweighted");
  Args.addOption("analyzer", "analyzer: threshold|average", "threshold");
  Args.addOption("param", "analyzer parameter (threshold or delta)", "0.6");
  Args.addOption("seed", "interpreter seed for .jp files", "1");
  Args.addFlag("list", "list detected and oracle phases explicitly");
  Args.addOption("html", "write an HTML timeline visualization here", "");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 1;

  // Obtain traces: positional .jp file or named workload. Keep the
  // compiled program around to attribute phases to source constructs.
  ExecutionResult Exec;
  std::unique_ptr<Program> Prog;
  std::string SourceName;
  if (!Args.positional().empty()) {
    SourceName = Args.positional().front();
    std::ifstream In(SourceName);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", SourceName.c_str());
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    DiagnosticEngine Diags;
    Prog = compileProgram(Buffer.str(), Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s: compile errors:\n%s", SourceName.c_str(),
                   Diags.renderAll().c_str());
      return 1;
    }
    InterpreterOptions Options;
    Options.Seed = static_cast<uint64_t>(Args.getInt("seed", 1));
    Exec = runProgram(*Prog, Options);
  } else {
    SourceName = Args.getOption("workload");
    const Workload *W = findWorkload(SourceName);
    if (!W) {
      std::fprintf(stderr, "error: unknown workload '%s'\n",
                   SourceName.c_str());
      return 1;
    }
    double Scale = Args.getDouble("scale", 0.5);
    Prog = compileWorkload(*W, Scale);
    InterpreterOptions Options;
    Options.Seed = W->Seed;
    Exec = runProgram(*Prog, Options);
  }
  ProgramInfo Info = ProgramInfo::build(*Prog);

  uint64_t MPL = static_cast<uint64_t>(Args.getInt("mpl", 10000));
  std::printf("%s: %s branches, %u sites; MPL = %s\n", SourceName.c_str(),
              formatCount(Exec.Branches.size()).c_str(),
              Exec.Branches.numSites(), formatAbbrev(MPL).c_str());

  std::vector<BaselineSolution> Baselines =
      computeBaselines(Exec.CallLoop, Exec.Branches.size(), {MPL});
  const BaselineSolution &Oracle = Baselines.front();

  DetectorConfig Config;
  Config.Window.CWSize = static_cast<uint32_t>(Args.getInt("cw", 5000));
  long TW = Args.getOption("tw").empty() ? 0 : Args.getInt("tw");
  Config.Window.TWSize =
      TW > 0 ? static_cast<uint32_t>(TW) : Config.Window.CWSize;
  Config.Window.SkipFactor =
      static_cast<uint32_t>(Args.getInt("skip", 1));
  Config.Window.TWPolicy = Args.getOption("policy") == "constant"
                               ? TWPolicyKind::Constant
                               : TWPolicyKind::Adaptive;
  Config.Model = Args.getOption("model") == "weighted"
                     ? ModelKind::WeightedSet
                     : ModelKind::UnweightedSet;
  Config.TheAnalyzer = Args.getOption("analyzer") == "average"
                           ? AnalyzerKind::Average
                           : AnalyzerKind::Threshold;
  Config.AnalyzerParam = Args.getDouble("param", 0.6);

  std::unique_ptr<PhaseDetector> Detector =
      makeDetector(Config, Exec.Branches.numSites());
  std::printf("detector: %s\n\n", Detector->describe().c_str());
  DetectorRun Run = runDetector(*Detector, Exec.Branches);

  const unsigned Width = 100;
  std::printf("oracle   |%s|  %zu phases, %s%% in phase\n",
              renderTimeline(Oracle.states(), Width).c_str(),
              Oracle.numPhases(),
              formatPercent(Oracle.fractionInPhase()).c_str());
  std::printf("detector |%s|  %zu phases\n\n",
              renderTimeline(Run.States, Width).c_str(),
              Run.DetectedPhases.size());

  AccuracyScore Score = scoreDetection(Run.States, Oracle.states());
  AccuracyScore Anchored =
      scoreDetection(Run.AnchoredPhases, Oracle.states());
  std::printf("score: correlation=%.3f sensitivity=%.3f "
              "falsePositives=%.3f -> %.3f\n",
              Score.Correlation, Score.Sensitivity, Score.FalsePositives,
              Score.Score);
  std::printf("with anchor-corrected starts: %.3f\n", Anchored.Score);

  if (const std::string &HtmlPath = Args.getOption("html");
      !HtmlPath.empty()) {
    StateSequence AnchoredStates = StateSequence::fromPhases(
        Run.AnchoredPhases, Exec.Branches.size());
    std::vector<TimelineTrack> Tracks = {
        {"oracle (MPL " + formatAbbrev(MPL) + ")", &Oracle.states(),
         "#2e7d32"},
        {"detector", &Run.States, "#4878d0"},
        {"anchored", &AnchoredStates, "#8a5fbf"},
    };
    std::string Html = renderTimelineHTML(
        SourceName + " phase timeline", Tracks);
    std::ofstream Out(HtmlPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", HtmlPath.c_str());
      return 1;
    }
    Out << Html;
    std::printf("wrote timeline to %s\n", HtmlPath.c_str());
  }

  if (Args.getFlag("list")) {
    std::printf("\noracle phases (with originating constructs):\n");
    for (const AttributedPhase &P : Oracle.attributedPhases()) {
      std::string Construct;
      if (P.ConstructKind == RepetitionInstance::Kind::Loop)
        Construct = "loop " + Info.loopName(P.StaticId);
      else
        Construct = "method " + Info.methodName(P.StaticId);
      if (P.NumInstances > 1)
        Construct += " x" + std::to_string(P.NumInstances);
      std::printf("  [%12s, %12s)  len %10s  %s\n",
                  formatCount(P.Interval.Begin).c_str(),
                  formatCount(P.Interval.End).c_str(),
                  formatCount(P.Interval.length()).c_str(),
                  Construct.c_str());
    }
    std::printf("detected phases:\n");
    for (const PhaseInterval &P : Run.DetectedPhases)
      std::printf("  [%12s, %12s)  len %10s\n",
                  formatCount(P.Begin).c_str(), formatCount(P.End).c_str(),
                  formatCount(P.length()).c_str());
  }
  return 0;
}
